// Package server exposes a compiled MV-index over HTTP with a small JSON
// API, turning the library into a queryable service:
//
//	POST /query      {"query": "Q(a) :- Advisor(104,a)"}        → answers with probabilities
//	POST /explain    {"query": "Q() :- Advisor(104,a)"}         → traversal statistics
//	GET  /marginal?var=17                                        → one tuple's corrected marginal
//	GET  /stats                                                  → index and dataset statistics
//	GET  /healthz                                                → liveness (always 200 while the process serves)
//	GET  /readyz                                                 → readiness (503 while draining)
//
// With a live-update configuration (EnableLive) the server also accepts
// mutations:
//
//	POST /update     {"mutations": [{"op": "insert", ...}, ...]}  → WAL-logged batch, applied incrementally
//	POST /reweight   {"rel": "Adv", "vals": [1, 101], "weight": 2} → single reweight through the same path
//
// Requests run concurrently: the index is frozen between mutations and its
// read path (Query, ExplainBoolean, TupleMarginal) builds query OBDDs in
// per-call scratch managers, so handlers only take a read lock. The write
// lock is held briefly while an update batch splices recompiled blocks into
// the index (see live.go).
//
// The server degrades gracefully under pressure (Config): evaluation
// handlers run under a per-request timeout and resource budget — a deadline
// or cancellation maps to 408, an exhausted node/pair budget to 503 — an
// admission semaphore sheds load with 503 + Retry-After when too many
// queries are in flight, request bodies are size-capped (413) and must be
// JSON (400), and a panicking handler is recovered to a 500 without taking
// the process down. All error responses are structured JSON:
// {"error": "...", "reason": "timeout"|"budget"|"overload"|...}.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"mime"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/core"
	"mvdb/internal/mvindex"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

// DefaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is 0.
const DefaultMaxBodyBytes = 1 << 20 // 1 MiB

// Config bounds the server's resource use. The zero value imposes no
// timeout, no admission cap, the default body cap, and no budget.
type Config struct {
	// QueryTimeout bounds each evaluation request; expiry returns 408.
	QueryTimeout time.Duration
	// MaxInflight caps concurrently evaluating requests; excess requests
	// are shed immediately with 503 + Retry-After. 0 means unlimited.
	MaxInflight int
	// MaxBodyBytes caps POST bodies; larger bodies return 413.
	// 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Budget bounds each evaluation's resources (OBDD nodes, intersection
	// pairs); a violation returns 503 with reason "budget".
	Budget budget.Budget
	// Cache bounds the cross-query answer/lineage cache installed on the
	// index at construction. The zero value enables it with defaults; set
	// Cache.Disable to serve uncached.
	Cache qcache.Options
	// Logger receives panic reports and write failures; nil means
	// log.Default().
	Logger *log.Logger
}

// role is the server's position in a replication topology. Standalone
// servers (no replication configured) ack writes whenever a write path is
// attached; primaries ack writes and ship their WAL; followers and fenced
// ex-primaries reject writes with 503.
type role int32

const (
	roleStandalone role = iota
	rolePrimary
	roleFollower
	roleDemoted
)

func (r role) String() string {
	switch r {
	case rolePrimary:
		return "primary"
	case roleFollower:
		return "follower"
	case roleDemoted:
		return "demoted"
	default:
		return "standalone"
	}
}

// Server wraps an MV-index as an http.Handler.
type Server struct {
	mu  sync.RWMutex // read-held by handlers; write-held only by index mutation
	ix  *mvindex.Index
	mux *http.ServeMux
	cfg Config
	sem chan struct{} // admission semaphore; nil = unlimited

	live  atomic.Pointer[Live] // write path; nil until EnableLive (or promotion)
	start time.Time

	role atomic.Int32  // current role (see type role)
	term atomic.Uint64 // fencing term; 0 until replication is enabled
	repl *replState    // replication wiring; nil unless enabled

	draining atomic.Bool

	// slow, when non-nil, runs inside each admitted evaluation handler
	// before the evaluation — a test-only hook to hold requests in flight
	// for the overload and drain tests.
	slow func()
}

// New builds a server around a compiled index with a zero Config.
func New(ix *mvindex.Index) *Server { return NewWith(ix, Config{}) }

// NewWith builds a server around a compiled index with explicit bounds.
func NewWith(ix *mvindex.Index, cfg Config) *Server {
	s := &Server{ix: ix, mux: http.NewServeMux(), cfg: cfg, start: time.Now()}
	// Serving is a repeated-workload setting, so the cross-query cache is on
	// by default; construction has exclusive access to the index, which
	// EnableCache (a mutating call) requires.
	ix.EnableCache(cfg.Cache)
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	s.mux.HandleFunc("POST /query", s.admit(s.handleQuery))
	s.mux.HandleFunc("POST /explain", s.admit(s.handleExplain))
	s.mux.HandleFunc("GET /marginal", s.admit(s.handleMarginal))
	s.mux.HandleFunc("GET /stats", s.handleStats)
	// Write and replication endpoints are always routed; the handlers gate on
	// the attached write path and the current role, so a follower answers 503
	// (not 404) and a promotion needs no re-registration.
	s.mux.HandleFunc("POST /update", s.handleUpdateGate)
	s.mux.HandleFunc("POST /reweight", s.handleReweightGate)
	s.mux.HandleFunc("GET /replication/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /replication/stream", s.handleReplStream)
	s.mux.HandleFunc("POST /replication/promote", s.handlePromote)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// SetDraining flips the readiness state: while draining, /readyz returns 503
// so load balancers stop routing new traffic, while in-flight and even new
// requests still complete. Flip it before http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// ServeHTTP implements http.Handler. A panic in any handler is recovered,
// logged with a stack, and answered with a 500 — one broken request must not
// take the process down.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.logf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// Best effort: if the handler already wrote headers this is a
			// no-op on the status line.
			s.httpError(w, http.StatusInternalServerError, "", "internal error")
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// admit applies the admission semaphore: requests beyond MaxInflight are
// shed immediately rather than queued, so latency stays bounded. On a
// follower it also applies the staleness gate — a lagging replica answers
// 503 rather than silently stale probabilities.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.freshEnough(w) {
			return
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				w.Header().Set("Retry-After", "1")
				s.httpError(w, http.StatusServiceUnavailable, "overload",
					"too many in-flight queries (max %d); retry later", s.cfg.MaxInflight)
				return
			}
		}
		if s.slow != nil {
			s.slow()
		}
		h(w, r)
	}
}

// acceptsWrites reports whether this node may ack mutations: a follower or a
// fenced (demoted) ex-primary must not.
func (s *Server) acceptsWrites() bool {
	switch role(s.role.Load()) {
	case roleStandalone, rolePrimary:
		return true
	default:
		return false
	}
}

// writePath resolves the attached Live for a mutation request, writing the
// 503 itself when this node must not ack writes.
func (s *Server) writePath(w http.ResponseWriter) (*Live, bool) {
	if !s.acceptsWrites() {
		w.Header().Set("Retry-After", "1")
		s.httpError(w, http.StatusServiceUnavailable, "not-primary",
			"this node is a %s (term %d) and does not ack writes", role(s.role.Load()), s.term.Load())
		return nil, false
	}
	l := s.live.Load()
	if l == nil {
		s.httpError(w, http.StatusServiceUnavailable, "read-only",
			"no write path configured (start with a WAL directory)")
		return nil, false
	}
	return l, true
}

func (s *Server) handleUpdateGate(w http.ResponseWriter, r *http.Request) {
	if l, ok := s.writePath(w); ok {
		l.handleUpdate(w, r)
	}
}

func (s *Server) handleReweightGate(w http.ResponseWriter, r *http.Request) {
	if l, ok := s.writePath(w); ok {
		l.handleReweight(w, r)
	}
}

// bounds derives the evaluation context and budget of one request.
func (s *Server) bounds(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		return context.WithTimeout(ctx, s.cfg.QueryTimeout)
	}
	return ctx, func() {}
}

func (s *Server) maxBody() int64 {
	if s.cfg.MaxBodyBytes > 0 {
		return s.cfg.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// decodeJSON enforces the content type and body cap, then decodes into dst.
// On failure it has already written the error response and returns false.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			s.httpError(w, http.StatusBadRequest, "content-type",
				"unsupported content type %q: use application/json", ct)
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "body-too-large",
				"request body exceeds %d bytes", mbe.Limit)
			return false
		}
		s.httpError(w, http.StatusBadRequest, "", "bad request body: %v", err)
		return false
	}
	return true
}

// evalError maps an evaluation failure to the degradation ladder: deadline
// and cancellation → 408, exhausted resource budget → 503, anything else →
// 422 (the query was well-formed but not evaluable).
func (s *Server) evalError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, budget.ErrCanceled):
		s.httpError(w, http.StatusRequestTimeout, "timeout", "%v", err)
	case errors.Is(err, budget.ErrBudgetExceeded):
		w.Header().Set("Retry-After", "1")
		s.httpError(w, http.StatusServiceUnavailable, "budget", "%v", err)
	default:
		s.httpError(w, http.StatusUnprocessableEntity, "", "evaluation failed: %v", err)
	}
}

type queryRequest struct {
	Query string `json:"query"`
	// CacheConscious selects CC-MVIntersect (default true).
	CacheConscious *bool `json:"cache_conscious,omitempty"`
}

type answerJSON struct {
	Head []any   `json:"head"`
	Prob float64 `json:"prob"`
}

type queryResponse struct {
	Answers []answerJSON `json:"answers"`
	Millis  float64      `json:"millis"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	q, err := ucq.Parse(req.Query)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "", "bad query: %v", err)
		return
	}
	ctx, cancel := s.bounds(r)
	defer cancel()
	opts := mvindex.IntersectOptions{
		CacheConscious: req.CacheConscious == nil || *req.CacheConscious,
		Ctx:            ctx,
		Budget:         s.cfg.Budget,
	}
	t0 := time.Now()
	s.mu.RLock()
	verr := s.ix.Translation().ValidateQuery(q.UCQ)
	var rows []core.Answer
	if verr == nil {
		rows, err = s.ix.Query(q, opts)
	}
	s.mu.RUnlock()
	if verr != nil {
		s.httpError(w, http.StatusBadRequest, "", "bad query: %v", verr)
		return
	}
	if err != nil {
		s.evalError(w, err)
		return
	}
	resp := queryResponse{Millis: float64(time.Since(t0).Microseconds()) / 1000, Answers: []answerJSON{}}
	for _, a := range rows {
		head := make([]any, len(a.Head))
		for i, v := range a.Head {
			if v.IsStr {
				head[i] = v.Str
			} else {
				head[i] = v.Int
			}
		}
		resp.Answers = append(resp.Answers, answerJSON{Head: head, Prob: a.Prob})
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	q, err := ucq.Parse(req.Query)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "", "bad query: %v", err)
		return
	}
	ctx, cancel := s.bounds(r)
	defer cancel()
	b := ucq.UCQ{Disjuncts: q.Disjuncts}
	s.mu.RLock()
	verr := s.ix.Translation().ValidateQuery(b)
	var ex mvindex.Explain
	if verr == nil {
		ex, err = s.ix.ExplainBoolean(b, mvindex.IntersectOptions{Ctx: ctx, Budget: s.cfg.Budget})
	}
	s.mu.RUnlock()
	if verr != nil {
		s.httpError(w, http.StatusBadRequest, "", "bad query: %v", verr)
		return
	}
	if err != nil {
		s.evalError(w, err)
		return
	}
	s.writeJSON(w, map[string]any{
		"query_nodes":   ex.QuerySize,
		"query_vars":    ex.QueryVars,
		"entry_block":   ex.EntryBlock,
		"last_block":    ex.LastBlock,
		"blocks":        ex.Blocks,
		"span_levels":   ex.SpanLevels,
		"index_levels":  ex.IndexLevels,
		"pairs_visited": ex.PairsVisited,
		"prob":          ex.Prob,
		"summary":       ex.String(),
	})
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.URL.Query().Get("var"))
	if err != nil || v < 1 {
		s.httpError(w, http.StatusBadRequest, "", "var must be a positive integer")
		return
	}
	ctx, cancel := s.bounds(r)
	defer cancel()
	s.mu.RLock()
	p, err := s.ix.TupleMarginal(v, mvindex.IntersectOptions{Ctx: ctx, Budget: s.cfg.Budget})
	var rel string
	var vals []any
	if err == nil {
		relName, tup, terr := s.ix.Translation().DB.VarTuple(v)
		if terr == nil {
			rel = relName
			for _, x := range tup.Vals {
				if x.IsStr {
					vals = append(vals, x.Str)
				} else {
					vals = append(vals, x.Int)
				}
			}
		}
	}
	s.mu.RUnlock()
	if err != nil {
		if errors.Is(err, budget.ErrCanceled) || errors.Is(err, budget.ErrBudgetExceeded) {
			s.evalError(w, err)
			return
		}
		s.httpError(w, http.StatusNotFound, "", "%v", err)
		return
	}
	s.writeJSON(w, map[string]any{"var": v, "relation": rel, "tuple": vals, "marginal": p})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tr := s.ix.Translation()
	stats := []map[string]any{}
	for _, st := range tr.DB.Stats() {
		stats = append(stats, map[string]any{
			"relation": st.Relation, "deterministic": st.Deterministic, "tuples": st.Tuples,
		})
	}
	logP, sign := s.ix.LogProbNotW()
	cs := s.ix.CacheStats()
	occupied, slots := s.ix.Manager().UniqueTableStats()
	out := map[string]any{
		"index_nodes":    s.ix.Size(),
		"index_blocks":   s.ix.Blocks(),
		"index_width":    s.ix.Width(),
		"tuple_vars":     tr.DB.NumVars(),
		"nv_relations":   tr.NVRelations,
		"denial_views":   tr.DenialViews,
		"log_p_not_w":    logP,
		"p_not_w_sign":   sign,
		"relations":      stats,
		"manager_nodes":  s.ix.Manager().NumNodes(),
		"pruned_indep":   tr.PrunedIndependent,
		"has_constraint": tr.HasConstraints(),
		"cache":          cs,
		// Derived ratios, so dashboards don't have to divide raw counters:
		// apply-cache hit rates (the frozen shared manager's and the
		// per-query scratch managers'), the cross-query answer cache's hit
		// rate, and the unique table's load factor (occupied buckets /
		// slots).
		"apply_cache_hit_rate":  hitRate(cs.SharedApplyHits, cs.SharedApplyMisses),
		"query_apply_hit_rate":  hitRate(cs.QueryApplyHits, cs.QueryApplyMisses),
		"answer_cache_hit_rate": hitRate(cs.Answers.Hits, cs.Answers.Misses),
		"unique_table_load":     loadFactor(occupied, slots),
		"uptime_sec":            time.Since(s.start).Seconds(),
		"role":                  role(s.role.Load()).String(),
		"term":                  s.term.Load(),
	}
	if ri := s.ix.ReorderInfo(); ri != nil {
		out["reorder"] = ri
	}
	if l := s.live.Load(); l != nil {
		out["live"] = l.stats()
	}
	if s.repl != nil {
		out["replication"] = s.repl.stats(s)
	}
	s.writeJSON(w, out)
}

// hitRate returns hits/(hits+misses), or 0 before any lookup.
func hitRate(hits, misses uint64) float64 {
	if total := hits + misses; total > 0 {
		return float64(hits) / float64(total)
	}
	return 0
}

// loadFactor returns occupied/slots, or 0 for an empty table.
func loadFactor(occupied, slots int) float64 {
	if slots > 0 {
		return float64(occupied) / float64(slots)
	}
	return 0
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.httpError(w, http.StatusServiceUnavailable, "draining", "shutting down")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) logf(format string, args ...any) {
	l := s.cfg.Logger
	if l == nil {
		l = log.Default()
	}
	l.Printf(format, args...)
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already out; log so the failure is visible.
		s.logf("server: writing response: %v", err)
	}
}

// httpError writes the structured error body. reason is a stable
// machine-readable label ("timeout", "budget", "overload", ...); empty means
// a generic client or evaluation error.
func (s *Server) httpError(w http.ResponseWriter, code int, reason, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	if reason != "" {
		body["reason"] = reason
	}
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.logf("server: writing error response: %v", err)
	}
}
