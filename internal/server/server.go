// Package server exposes a compiled MV-index over HTTP with a small JSON
// API, turning the library into a queryable service:
//
//	POST /query      {"query": "Q(a) :- Advisor(104,a)"}        → answers with probabilities
//	POST /explain    {"query": "Q() :- Advisor(104,a)"}         → traversal statistics
//	GET  /marginal?var=17                                        → one tuple's corrected marginal
//	GET  /stats                                                  → index and dataset statistics
//	GET  /healthz                                                → liveness
//
// Requests run concurrently: the index is frozen after Build and its read
// path (Query, ExplainBoolean, TupleMarginal) builds query OBDDs in per-call
// scratch managers, so handlers only take a read lock. The write lock exists
// for operations that would mutate the index (none are exposed over HTTP
// today); malformed or unsafe query input is reported as 400 with a JSON
// error body, while genuine evaluation failures are 422.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/mvindex"
	"mvdb/internal/ucq"
)

// Server wraps an MV-index as an http.Handler.
type Server struct {
	mu  sync.RWMutex // read-held by handlers; write-held only by index mutation
	ix  *mvindex.Index
	mux *http.ServeMux
}

// New builds a server around a compiled index.
func New(ix *mvindex.Index) *Server {
	s := &Server{ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux.HandleFunc("GET /marginal", s.handleMarginal)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type queryRequest struct {
	Query string `json:"query"`
	// CacheConscious selects CC-MVIntersect (default true).
	CacheConscious *bool `json:"cache_conscious,omitempty"`
}

type answerJSON struct {
	Head []any   `json:"head"`
	Prob float64 `json:"prob"`
}

type queryResponse struct {
	Answers []answerJSON `json:"answers"`
	Millis  float64      `json:"millis"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, err := ucq.Parse(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	opts := mvindex.IntersectOptions{CacheConscious: req.CacheConscious == nil || *req.CacheConscious}
	t0 := time.Now()
	s.mu.RLock()
	verr := s.ix.Translation().ValidateQuery(q.UCQ)
	var rows []core.Answer
	if verr == nil {
		rows, err = s.ix.Query(q, opts)
	}
	s.mu.RUnlock()
	if verr != nil {
		httpError(w, http.StatusBadRequest, "bad query: %v", verr)
		return
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "evaluation failed: %v", err)
		return
	}
	resp := queryResponse{Millis: float64(time.Since(t0).Microseconds()) / 1000, Answers: []answerJSON{}}
	for _, a := range rows {
		head := make([]any, len(a.Head))
		for i, v := range a.Head {
			if v.IsStr {
				head[i] = v.Str
			} else {
				head[i] = v.Int
			}
		}
		resp.Answers = append(resp.Answers, answerJSON{Head: head, Prob: a.Prob})
	}
	writeJSON(w, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, err := ucq.Parse(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	b := ucq.UCQ{Disjuncts: q.Disjuncts}
	s.mu.RLock()
	verr := s.ix.Translation().ValidateQuery(b)
	var ex mvindex.Explain
	if verr == nil {
		ex, err = s.ix.ExplainBoolean(b)
	}
	s.mu.RUnlock()
	if verr != nil {
		httpError(w, http.StatusBadRequest, "bad query: %v", verr)
		return
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "evaluation failed: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"query_nodes":   ex.QuerySize,
		"query_vars":    ex.QueryVars,
		"entry_block":   ex.EntryBlock,
		"last_block":    ex.LastBlock,
		"blocks":        ex.Blocks,
		"span_levels":   ex.SpanLevels,
		"index_levels":  ex.IndexLevels,
		"pairs_visited": ex.PairsVisited,
		"prob":          ex.Prob,
		"summary":       ex.String(),
	})
}

func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.URL.Query().Get("var"))
	if err != nil || v < 1 {
		httpError(w, http.StatusBadRequest, "var must be a positive integer")
		return
	}
	s.mu.RLock()
	p, err := s.ix.TupleMarginal(v)
	var rel string
	var vals []any
	if err == nil {
		relName, tup, terr := s.ix.Translation().DB.VarTuple(v)
		if terr == nil {
			rel = relName
			for _, x := range tup.Vals {
				if x.IsStr {
					vals = append(vals, x.Str)
				} else {
					vals = append(vals, x.Int)
				}
			}
		}
	}
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"var": v, "relation": rel, "tuple": vals, "marginal": p})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tr := s.ix.Translation()
	stats := []map[string]any{}
	for _, st := range tr.DB.Stats() {
		stats = append(stats, map[string]any{
			"relation": st.Relation, "deterministic": st.Deterministic, "tuples": st.Tuples,
		})
	}
	logP, sign := s.ix.LogProbNotW()
	out := map[string]any{
		"index_nodes":    s.ix.Size(),
		"index_blocks":   s.ix.Blocks(),
		"index_width":    s.ix.Width(),
		"tuple_vars":     tr.DB.NumVars(),
		"nv_relations":   tr.NVRelations,
		"denial_views":   tr.DenialViews,
		"log_p_not_w":    logP,
		"p_not_w_sign":   sign,
		"relations":      stats,
		"manager_nodes":  s.ix.Manager().NumNodes(),
		"pruned_indep":   tr.PrunedIndependent,
		"has_constraint": tr.HasConstraints(),
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Too late for a status change; nothing sensible to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
