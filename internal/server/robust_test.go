package server

import (
	"bytes"
	"context"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mvdb/internal/budget"
	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
)

func testServerWith(t *testing.T, cfg Config) (*Server, *core.Translation) {
	t.Helper()
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 1.0, engine.Int(2), engine.Int(10))
	m := core.New(db)
	v, err := core.ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", core.ConstWeight(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return NewWith(ix, cfg), tr
}

const goodQuery = `{"query": "Q(a) :- Adv(1,a)"}`

func TestOversizedBodyIs413(t *testing.T) {
	s, _ := testServerWith(t, Config{MaxBodyBytes: 64})
	big := `{"query": "` + strings.Repeat("x", 200) + `"}`
	rec, out := do(t, s, "POST", "/query", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("code = %d want 413 (body %s)", rec.Code, rec.Body)
	}
	if out["reason"] != "body-too-large" {
		t.Errorf("reason = %v", out["reason"])
	}
	// Small bodies still work.
	rec, _ = do(t, s, "POST", "/query", goodQuery)
	if rec.Code != http.StatusOK {
		t.Errorf("small body after oversize: code = %d", rec.Code)
	}
}

func TestContentTypeRejected(t *testing.T) {
	s, _ := testServerWith(t, Config{})
	req := httptest.NewRequest("POST", "/query", strings.NewReader(goodQuery))
	req.Header.Set("Content-Type", "text/plain")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("text/plain: code = %d want 400 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "content-type") {
		t.Errorf("missing reason: %s", rec.Body)
	}
	// Explicit JSON (with parameters) is accepted.
	req = httptest.NewRequest("POST", "/query", strings.NewReader(goodQuery))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("application/json: code = %d (body %s)", rec.Code, rec.Body)
	}
}

// TestQueryTimeoutIs408: an expired per-request timeout comes back as a
// structured 408 while unbudgeted endpoints on the same server keep serving.
func TestQueryTimeoutIs408(t *testing.T) {
	s, _ := testServerWith(t, Config{QueryTimeout: time.Nanosecond})
	for _, path := range []string{"/query", "/explain"} {
		rec, out := do(t, s, "POST", path, goodQuery)
		if rec.Code != http.StatusRequestTimeout {
			t.Errorf("%s: code = %d want 408 (body %s)", path, rec.Code, rec.Body)
		}
		if out["reason"] != "timeout" {
			t.Errorf("%s: reason = %v", path, out["reason"])
		}
	}
	for _, path := range []string{"/healthz", "/readyz", "/stats"} {
		rec, _ := do(t, s, "GET", path, "")
		if rec.Code != http.StatusOK {
			t.Errorf("%s after timeouts: code = %d", path, rec.Code)
		}
	}
}

// TestBudgetExceededIs503: exhausting the per-request node budget is
// reported as 503 with reason "budget" and a Retry-After hint.
func TestBudgetExceededIs503(t *testing.T) {
	s, _ := testServerWith(t, Config{Budget: budget.Budget{MaxNodes: 1}})
	rec, out := do(t, s, "POST", "/query", goodQuery)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d want 503 (body %s)", rec.Code, rec.Body)
	}
	if out["reason"] != "budget" {
		t.Errorf("reason = %v", out["reason"])
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("missing Retry-After")
	}
}

// TestOverloadSheds503: with MaxInflight=1 and one request parked in the
// handler, the next evaluation request is shed immediately with 503 +
// Retry-After, health stays green, and the parked request completes once
// released.
func TestOverloadSheds503(t *testing.T) {
	s, _ := testServerWith(t, Config{MaxInflight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.slow = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	type result struct {
		code int
		body string
	}
	first := make(chan result, 1)
	go func() {
		req := httptest.NewRequest("POST", "/query", strings.NewReader(goodQuery))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		first <- result{rec.Code, rec.Body.String()}
	}()
	<-entered

	rec, out := do(t, s, "POST", "/query", goodQuery)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("shed request: code = %d want 503 (body %s)", rec.Code, rec.Body)
	}
	if out["reason"] != "overload" {
		t.Errorf("reason = %v", out["reason"])
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("missing Retry-After")
	}
	rec, _ = do(t, s, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Errorf("healthz under overload: code = %d", rec.Code)
	}

	close(release)
	r := <-first
	if r.code != http.StatusOK {
		t.Errorf("parked request: code = %d body %s", r.code, r.body)
	}
}

// TestPanicRecovered: a panicking handler yields a 500 and the server keeps
// serving subsequent requests.
func TestPanicRecovered(t *testing.T) {
	var buf bytes.Buffer
	s, _ := testServerWith(t, Config{Logger: log.New(&buf, "", 0)})
	fired := false
	s.slow = func() {
		if !fired {
			fired = true
			panic("injected handler panic")
		}
	}
	rec, _ := do(t, s, "POST", "/query", goodQuery)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: code = %d want 500 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(buf.String(), "injected handler panic") {
		t.Error("panic not logged")
	}
	// The process survived: health and real queries still work.
	rec, _ = do(t, s, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Errorf("healthz after panic: code = %d", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/query", goodQuery)
	if rec.Code != http.StatusOK {
		t.Errorf("query after panic: code = %d (body %s)", rec.Code, rec.Body)
	}
}

func TestReadyzDraining(t *testing.T) {
	s, _ := testServerWith(t, Config{})
	rec, _ := do(t, s, "GET", "/readyz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d", rec.Code)
	}
	s.SetDraining(true)
	rec, out := do(t, s, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d", rec.Code)
	}
	if out["reason"] != "draining" {
		t.Errorf("reason = %v", out["reason"])
	}
	// Liveness and in-flight work are unaffected by draining.
	rec, _ = do(t, s, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Errorf("healthz while draining = %d", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/query", goodQuery)
	if rec.Code != http.StatusOK {
		t.Errorf("query while draining = %d", rec.Code)
	}
}

// TestGracefulShutdownDrainsInflight runs the server on a real listener,
// parks a request in the handler, starts http.Server.Shutdown, and asserts
// the parked request still completes with 200 and Shutdown returns cleanly —
// the contract behind mvdbd's SIGTERM handling.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	s, _ := testServerWith(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.slow = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		res, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(goodQuery))
		if err != nil {
			inflight <- result{0, err}
			return
		}
		defer res.Body.Close()
		inflight <- result{res.StatusCode, nil}
	}()
	<-entered

	s.SetDraining(true)
	res, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d", res.StatusCode)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- ts.Config.Shutdown(ctx)
	}()
	// Shutdown must wait for the parked request, not kill it.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case r := <-inflight:
		if r.err != nil {
			t.Fatalf("in-flight request failed during shutdown: %v", r.err)
		}
		if r.code != http.StatusOK {
			t.Errorf("in-flight request: code = %d want 200", r.code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestWriteJSONLogsEncodeError: an unencodable value (Inf) is logged, not
// silently discarded.
func TestWriteJSONLogsEncodeError(t *testing.T) {
	var buf bytes.Buffer
	s, _ := testServerWith(t, Config{Logger: log.New(&buf, "", 0)})
	rec := httptest.NewRecorder()
	s.writeJSON(rec, math.Inf(1))
	if !strings.Contains(buf.String(), "writing response") {
		t.Errorf("encode error not logged: %q", buf.String())
	}
}
