package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
	"mvdb/internal/ucq"
)

func testServer(t *testing.T) (*Server, *core.Translation) {
	t.Helper()
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 1.0, engine.Int(2), engine.Int(10))
	m := core.New(db)
	v, err := core.ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", core.ConstWeight(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return New(ix), tr
}

func do(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 && strings.Contains(rec.Header().Get("Content-Type"), "json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad json %q: %v", rec.Body.String(), err)
		}
	}
	return rec, out
}

func TestQueryEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, out := do(t, s, "POST", "/query", `{"query": "Q(a) :- Adv(1,a)"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d body %s", rec.Code, rec.Body)
	}
	answers := out["answers"].([]any)
	if len(answers) != 2 {
		t.Fatalf("answers = %v", answers)
	}
	// Denial view makes the candidates exclusive; worlds weigh 1, 2, 2, 0,
	// so each candidate has probability 2/5.
	for _, a := range answers {
		p := a.(map[string]any)["prob"].(float64)
		if math.Abs(p-0.4) > 1e-9 {
			t.Errorf("prob = %v want 0.4", p)
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s, _ := testServer(t)
	rec, _ := do(t, s, "POST", "/query", `not json`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad body: code = %d", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/query", `{"query": "syntax error("}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad query: code = %d", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/query", `{"query": "Q(x) :- Nope(x)"}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown relation: code = %d", rec.Code)
	}
	rec, _ = do(t, s, "GET", "/query", "")
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Errorf("GET /query: code = %d", rec.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, out := do(t, s, "POST", "/explain", `{"query": "Q() :- Adv(1,a)"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d body %s", rec.Code, rec.Body)
	}
	if out["prob"].(float64) <= 0 {
		t.Errorf("prob = %v", out["prob"])
	}
	if out["summary"].(string) == "" {
		t.Error("empty summary")
	}
}

func TestMarginalEndpoint(t *testing.T) {
	s, tr := testServer(t)
	rec, out := do(t, s, "GET", "/marginal?var=1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d body %s", rec.Code, rec.Body)
	}
	if out["relation"].(string) != "Adv" {
		t.Errorf("relation = %v", out["relation"])
	}
	p := out["marginal"].(float64)
	// Cross-check against the source semantics.
	want, err := tr.ProbBoolean(mustUCQ("Q() :- Adv(1,10)"), core.MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("marginal = %v want %v", p, want)
	}
	rec, _ = do(t, s, "GET", "/marginal?var=zzz", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad var: code = %d", rec.Code)
	}
	rec, _ = do(t, s, "GET", "/marginal?var=999", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing var: code = %d", rec.Code)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s, _ := testServer(t)
	rec, out := do(t, s, "GET", "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	if out["index_nodes"].(float64) <= 0 || out["tuple_vars"].(float64) != 3 {
		t.Errorf("stats = %v", out)
	}
	rec, _ = do(t, s, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}
}

func mustUCQ(src string) ucq.UCQ {
	return ucq.MustParse(src).UCQ
}
