package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
	"mvdb/internal/obdd"
	"mvdb/internal/qcache"
	"mvdb/internal/ucq"
)

func testServer(t *testing.T) (*Server, *core.Translation) {
	t.Helper()
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 1.0, engine.Int(2), engine.Int(10))
	m := core.New(db)
	v, err := core.ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", core.ConstWeight(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return New(ix), tr
}

func do(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 && strings.Contains(rec.Header().Get("Content-Type"), "json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad json %q: %v", rec.Body.String(), err)
		}
	}
	return rec, out
}

func TestQueryEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, out := do(t, s, "POST", "/query", `{"query": "Q(a) :- Adv(1,a)"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d body %s", rec.Code, rec.Body)
	}
	answers := out["answers"].([]any)
	if len(answers) != 2 {
		t.Fatalf("answers = %v", answers)
	}
	// Denial view makes the candidates exclusive; worlds weigh 1, 2, 2, 0,
	// so each candidate has probability 2/5.
	for _, a := range answers {
		p := a.(map[string]any)["prob"].(float64)
		if math.Abs(p-0.4) > 1e-9 {
			t.Errorf("prob = %v want 0.4", p)
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s, _ := testServer(t)
	rec, _ := do(t, s, "POST", "/query", `not json`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad body: code = %d", rec.Code)
	}
	rec, _ = do(t, s, "POST", "/query", `{"query": "syntax error("}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad query: code = %d", rec.Code)
	}
	rec, _ = do(t, s, "GET", "/query", "")
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Errorf("GET /query: code = %d", rec.Code)
	}
}

// TestBadInputIs400 pins the input-error contract: malformed or unsafe query
// input — unknown relations, wrong arity, internal NV relations — is the
// client's fault and must come back as 400 with a JSON error body, never as
// 500 or 422 (those are reserved for evaluation failures).
func TestBadInputIs400(t *testing.T) {
	// A soft (non-denial) view so the translation has a real NV relation.
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(11))
	m := core.New(db)
	v, err := core.ParseView("V(s,a,b) :- Adv(s,a), Adv(s,b), a <> b", core.ConstWeight(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix)
	if len(tr.NVRelations) == 0 {
		t.Fatal("soft view produced no NV relation")
	}
	nv := tr.NVRelations[0]
	cases := []struct {
		name, body string
		path       string
	}{
		{"unknown relation", `{"query": "Q(x) :- Nope(x)"}`, "/query"},
		{"wrong arity", `{"query": "Q(x) :- Adv(x)"}`, "/query"},
		{"internal NV relation", `{"query": "Q(x) :- ` + nv + `(x,y,z)"}`, "/query"},
		{"explain unknown relation", `{"query": "Q() :- Nope(x)"}`, "/explain"},
	}
	for _, c := range cases {
		rec, out := do(t, s, "POST", c.path, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code = %d want 400 (body %s)", c.name, rec.Code, rec.Body)
		}
		if msg, ok := out["error"].(string); !ok || msg == "" {
			t.Errorf("%s: missing JSON error body: %s", c.name, rec.Body)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, out := do(t, s, "POST", "/explain", `{"query": "Q() :- Adv(1,a)"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d body %s", rec.Code, rec.Body)
	}
	if out["prob"].(float64) <= 0 {
		t.Errorf("prob = %v", out["prob"])
	}
	if out["summary"].(string) == "" {
		t.Error("empty summary")
	}
}

func TestMarginalEndpoint(t *testing.T) {
	s, tr := testServer(t)
	rec, out := do(t, s, "GET", "/marginal?var=1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d body %s", rec.Code, rec.Body)
	}
	if out["relation"].(string) != "Adv" {
		t.Errorf("relation = %v", out["relation"])
	}
	p := out["marginal"].(float64)
	// Cross-check against the source semantics.
	want, err := tr.ProbBoolean(mustUCQ("Q() :- Adv(1,10)"), core.MethodBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("marginal = %v want %v", p, want)
	}
	rec, _ = do(t, s, "GET", "/marginal?var=zzz", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad var: code = %d", rec.Code)
	}
	rec, _ = do(t, s, "GET", "/marginal?var=999", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing var: code = %d", rec.Code)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s, _ := testServer(t)
	rec, out := do(t, s, "GET", "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	if out["index_nodes"].(float64) <= 0 || out["tuple_vars"].(float64) != 3 {
		t.Errorf("stats = %v", out)
	}
	rec, _ = do(t, s, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}
}

// TestStatsDerivedRatios pins the derived-ratio fields of /stats: the
// apply-cache hit rate and the unique-table load factor must be present and
// in [0, 1] (load strictly positive — the manager always holds nodes), and a
// sifted index must surface its reorder provenance.
func TestStatsDerivedRatios(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	for s := int64(1); s <= 8; s++ {
		db.MustInsert("Adv", 2.0, engine.Int(s), engine.Int(10+s))
		db.MustInsert("Adv", 1.5, engine.Int(s), engine.Int(20+s))
	}
	m := core.New(db)
	v, err := core.ParseView("V(s) :- Adv(s,a)", core.ConstWeight(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Reorder = obdd.ReorderOptions{Mode: obdd.ReorderConverge}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix)

	// Run a query twice so the shared apply cache sees traffic.
	for i := 0; i < 2; i++ {
		if rec, _ := do(t, s, "POST", "/query", `{"query": "Q(a) :- Adv(1,a)"}`); rec.Code != http.StatusOK {
			t.Fatalf("query %d: code = %d", i, rec.Code)
		}
	}
	rec, out := do(t, s, "GET", "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats: %d", rec.Code)
	}
	for _, field := range []string{"apply_cache_hit_rate", "query_apply_hit_rate", "answer_cache_hit_rate", "unique_table_load"} {
		v, ok := out[field].(float64)
		if !ok {
			t.Fatalf("/stats missing %s: %v", field, out)
		}
		if v < 0 || v > 1 {
			t.Fatalf("%s = %v out of [0,1]", field, v)
		}
	}
	if out["unique_table_load"].(float64) <= 0 {
		t.Fatalf("unique_table_load = %v, want > 0", out["unique_table_load"])
	}
	ri, ok := out["reorder"].(map[string]any)
	if !ok {
		t.Fatalf("/stats missing reorder block on a sifted index: %v", out)
	}
	if ri["mode"] != "converge" || ri["provenance"] != "sifted" {
		t.Fatalf("reorder block = %v", ri)
	}
	if ri["nodes_before"].(float64) < ri["nodes_after"].(float64) {
		t.Fatalf("reorder grew the index: %v", ri)
	}
	if _, ok := ri["block_provenance"].(map[string]any); !ok {
		t.Fatalf("reorder block lacks block_provenance: %v", ri)
	}

	// An unsifted index must NOT have the reorder block.
	s2, _ := testServer(t)
	_, out2 := do(t, s2, "GET", "/stats", "")
	if _, present := out2["reorder"]; present {
		t.Fatalf("unsifted index reports reorder: %v", out2["reorder"])
	}
}

func mustUCQ(src string) ucq.UCQ {
	return ucq.MustParse(src).UCQ
}

// TestConcurrentQueryHammer fires 32 goroutines of mixed HTTP traffic —
// queries, explains, marginals, stats — at one server sharing one index.
// Every query response must equal the single-threaded reference; run under
// -race this exercises the RWMutex read path and the index's frozen-state
// contract end to end.
func TestConcurrentQueryHammer(t *testing.T) {
	s, _ := testServer(t)
	ref, refOut := do(t, s, "POST", "/query", `{"query": "Q(a) :- Adv(1,a)"}`)
	if ref.Code != http.StatusOK {
		t.Fatalf("reference query: code = %d", ref.Code)
	}
	wantAnswers, _ := json.Marshal(refOut["answers"])

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*8)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				body := `{"query": "Q(a) :- Adv(1,a)"}`
				if g%2 == 0 {
					body = `{"query": "Q(a) :- Adv(1,a)", "cache_conscious": false}`
				}
				req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("query code %d", rec.Code)
					continue
				}
				var out map[string]any
				if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
					errs <- "bad json: " + err.Error()
					continue
				}
				got, _ := json.Marshal(out["answers"])
				if string(got) != string(wantAnswers) {
					errs <- "answers diverged: " + string(got)
				}
				for _, p := range []string{"/stats", "/marginal?var=1", "/healthz"} {
					req := httptest.NewRequest("GET", p, nil)
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						errs <- p + " failed"
					}
				}
				req = httptest.NewRequest("POST", "/explain", strings.NewReader(`{"query": "Q() :- Adv(1,a)"}`))
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- "explain failed"
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestCacheServesRepeatedQueries: the server installs the cross-query cache
// by default — an identical (even alpha-renamed) second query must be a cache
// hit with identical answers, and /stats must expose the counters.
func TestCacheServesRepeatedQueries(t *testing.T) {
	s, _ := testServer(t)
	rec1, out1 := do(t, s, "POST", "/query", `{"query": "Q(a) :- Adv(1,a)"}`)
	if rec1.Code != http.StatusOK {
		t.Fatalf("first query: %d %s", rec1.Code, rec1.Body)
	}
	// Renamed spelling of the same query: must share the fingerprint.
	rec2, out2 := do(t, s, "POST", "/query", `{"query": "Other(x) :- Adv(1,x)"}`)
	if rec2.Code != http.StatusOK {
		t.Fatalf("second query: %d %s", rec2.Code, rec2.Body)
	}
	a1, _ := json.Marshal(out1["answers"])
	a2, _ := json.Marshal(out2["answers"])
	if string(a1) != string(a2) {
		t.Fatalf("cached answers diverged:\n%s\n%s", a1, a2)
	}
	rec, stats := do(t, s, "GET", "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats: %d", rec.Code)
	}
	cache, ok := stats["cache"].(map[string]any)
	if !ok {
		t.Fatalf("no cache section in /stats: %v", stats)
	}
	if cache["enabled"] != true {
		t.Fatalf("cache not enabled by default: %v", cache)
	}
	answers := cache["answers"].(map[string]any)
	if answers["hits"].(float64) < 1 {
		t.Fatalf("second query did not hit: %v", answers)
	}
	if answers["misses"].(float64) < 1 {
		t.Fatalf("first query did not miss: %v", answers)
	}
}

// TestCacheDisabledByConfig: Config.Cache.Disable serves uncached.
func TestCacheDisabledByConfig(t *testing.T) {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(10))
	m := core.New(db)
	v, err := core.ParseView("V(s) :- Adv(s,a)", core.ConstWeight(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWith(ix, Config{Cache: qcache.Options{Disable: true}})
	do(t, s, "POST", "/query", `{"query": "Q(a) :- Adv(1,a)"}`)
	do(t, s, "POST", "/query", `{"query": "Q(a) :- Adv(1,a)"}`)
	_, stats := do(t, s, "GET", "/stats", "")
	cache := stats["cache"].(map[string]any)
	if cache["enabled"] != false {
		t.Fatalf("cache should be disabled: %v", cache)
	}
}
