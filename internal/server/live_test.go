package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"sync"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
	"mvdb/internal/ucq"
	"mvdb/internal/wal"
)

// liveMVDB is the mutable fixture: a probabilistic Adv table under a
// WeightTable-backed soft view, so the source survives snapshots and accepts
// mutations for heads that do not exist yet.
func liveMVDB() *core.MVDB {
	db := engine.NewDatabase()
	db.MustCreateRelation("Adv", false, "s", "a")
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(10))
	db.MustInsert("Adv", 2.0, engine.Int(1), engine.Int(11))
	db.MustInsert("Adv", 1.5, engine.Int(2), engine.Int(10))
	m := core.New(db)
	v, err := core.ParseView("V(s) :- Adv(s,a)", core.ConstWeight(2.5))
	if err != nil {
		panic(err)
	}
	v.Weights = &core.WeightTable{Default: 2.5}
	v.Weight = nil
	if err := m.AddView(v); err != nil {
		panic(err)
	}
	return m
}

func buildLiveIndex() (*mvindex.Index, error) {
	tr, err := liveMVDB().Translate(core.TranslateOptions{})
	if err != nil {
		return nil, err
	}
	return mvindex.Build(tr)
}

// scratchProb evaluates a boolean query on a fresh from-scratch index built
// from the initial MVDB plus the given mutations, in order.
func scratchProb(t *testing.T, muts []core.Mutation, query string) float64 {
	t.Helper()
	m := liveMVDB()
	if len(muts) > 0 {
		if err := m.Apply(muts); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ucq.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ix.Query(q, mvindex.IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Prob
}

func liveServer(t *testing.T, cfg LiveConfig) (*Server, *Live) {
	t.Helper()
	ix, l, err := OpenLive(cfg, buildLiveIndex)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix)
	s.EnableLive(l)
	return s, l
}

func queryProb(t *testing.T, s *Server, query string) float64 {
	t.Helper()
	rec, out := do(t, s, "POST", "/query", fmt.Sprintf(`{"query": %q}`, query))
	if rec.Code != http.StatusOK {
		t.Fatalf("query: code %d body %s", rec.Code, rec.Body)
	}
	answers := out["answers"].([]any)
	if len(answers) == 0 {
		return 0
	}
	return answers[0].(map[string]any)["prob"].(float64)
}

const boolQ = "Q() :- Adv(1,a)"

func TestUpdateEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, l := liveServer(t, LiveConfig{WALDir: filepath.Join(dir, "wal")})
	defer l.Close()

	var applied []core.Mutation
	steps := []struct {
		body string
		muts []core.Mutation
	}{
		{`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [1, 12], "weight": 3}]}`,
			[]core.Mutation{{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(12)}, Weight: 3}}},
		{`{"mutations": [{"op": "delete", "rel": "Adv", "vals": [1, 11]},
		                 {"op": "reweight", "rel": "Adv", "vals": [1, 10], "weight": 0.5}]}`,
			[]core.Mutation{
				{Op: core.MutDelete, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(11)}},
				{Op: core.MutReweight, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(10)}, Weight: 0.5}}},
		{`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [3, 10], "weight": 1.25}]}`,
			[]core.Mutation{{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(3), engine.Int(10)}, Weight: 1.25}}},
	}
	for i, step := range steps {
		rec, out := do(t, s, "POST", "/update", step.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("step %d: code %d body %s", i, rec.Code, rec.Body)
		}
		if seq := out["seq"].(float64); seq != float64(i+1) {
			t.Fatalf("step %d: seq %v", i, seq)
		}
		applied = append(applied, step.muts...)
		got := queryProb(t, s, boolQ)
		want := scratchProb(t, applied, boolQ)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("step %d: prob %v, from-scratch %v", i, got, want)
		}
	}
	// The probability actually shifted across the run.
	if p0, p := scratchProb(t, nil, boolQ), queryProb(t, s, boolQ); math.Abs(p0-p) < 1e-9 {
		t.Fatalf("mutations did not move the answer: %v", p)
	}
}

func TestUpdateValidation(t *testing.T) {
	dir := t.TempDir()
	s, l := liveServer(t, LiveConfig{WALDir: filepath.Join(dir, "wal")})
	defer l.Close()
	for _, body := range []string{
		`{"mutations": []}`,
		`{"mutations": [{"op": "insert", "rel": "Nope", "vals": [1], "weight": 1}]}`,
		`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [1, 10], "weight": 1}]}`, // duplicate
		`{"mutations": [{"op": "frobnicate", "rel": "Adv", "vals": [1, 10]}]}`,
		`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [1, 2.5], "weight": 1}]}`, // non-integer value
		`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [9, 9], "weight": -1}]}`,
		`{"mutations": [{"op": "delete", "rel": "Adv", "vals": [77, 77]}]}`, // absent
	} {
		rec, _ := do(t, s, "POST", "/update", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: code %d want 400", body, rec.Code)
		}
	}
	// Rejected batches must not reach the WAL.
	if st := l.log.Stats(); st.Frames != 0 {
		t.Fatalf("rejected batches were logged: %+v", st)
	}
	if p, want := queryProb(t, s, boolQ), scratchProb(t, nil, boolQ); math.Abs(p-want) > 1e-12 {
		t.Fatalf("rejected batches changed the answer: %v want %v", p, want)
	}
}

func TestUpdateDraining(t *testing.T) {
	dir := t.TempDir()
	s, l := liveServer(t, LiveConfig{WALDir: filepath.Join(dir, "wal")})
	defer l.Close()
	s.SetDraining(true)
	rec, out := do(t, s, "POST", "/update",
		`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [9, 9], "weight": 1}]}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("code %d want 409", rec.Code)
	}
	if out["reason"] != "draining" {
		t.Fatalf("reason %v", out["reason"])
	}
	s.SetDraining(false)
	if rec, _ := do(t, s, "POST", "/update",
		`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [9, 9], "weight": 1}]}`); rec.Code != http.StatusOK {
		t.Fatalf("after undrain: code %d", rec.Code)
	}
}

func TestReweightEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, l := liveServer(t, LiveConfig{WALDir: filepath.Join(dir, "wal")})
	defer l.Close()
	rec, out := do(t, s, "POST", "/reweight", `{"rel": "Adv", "vals": [1, 10], "weight": 0.25}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d body %s", rec.Code, rec.Body)
	}
	if wo := out["weight_only"].(bool); !wo {
		t.Fatalf("reweight took the structural path: %v", out)
	}
	want := scratchProb(t, []core.Mutation{
		{Op: core.MutReweight, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(10)}, Weight: 0.25},
	}, boolQ)
	if got := queryProb(t, s, boolQ); math.Abs(got-want) > 1e-12 {
		t.Fatalf("prob %v want %v", got, want)
	}
	// Reweights are durable: they land in the WAL like any other mutation.
	if st := l.log.Stats(); st.Frames != 1 || st.SyncedSeq != 1 {
		t.Fatalf("wal stats %+v", st)
	}
}

func TestLiveStats(t *testing.T) {
	dir := t.TempDir()
	s, l := liveServer(t, LiveConfig{WALDir: filepath.Join(dir, "wal"), SnapshotPath: filepath.Join(dir, "snap")})
	defer l.Close()
	do(t, s, "POST", "/update", `{"mutations": [{"op": "insert", "rel": "Adv", "vals": [5, 50], "weight": 2}]}`)
	do(t, s, "POST", "/reweight", `{"rel": "Adv", "vals": [5, 50], "weight": 1.5}`)
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	rec, out := do(t, s, "GET", "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d", rec.Code)
	}
	if up := out["uptime_sec"].(float64); up < 0 {
		t.Fatalf("uptime %v", up)
	}
	live := out["live"].(map[string]any)
	applied := live["applied"].(map[string]any)
	if applied["batches"].(float64) != 2 || applied["mutations"].(float64) != 2 ||
		applied["inserts"].(float64) != 1 || applied["reweights"].(float64) != 1 ||
		applied["weight_only_batches"].(float64) != 1 {
		t.Fatalf("applied counters %v", applied)
	}
	if live["snapshot_seq"].(float64) != 2 {
		t.Fatalf("snapshot_seq %v", live["snapshot_seq"])
	}
	if live["last_snapshot_age_sec"] == nil {
		t.Fatalf("no snapshot age after snapshot: %v", live)
	}
	w := live["wal"].(map[string]any)
	if w["frames"].(float64) != 0 { // snapshot truncated the log
		t.Fatalf("wal stats after snapshot: %v", w)
	}
}

// TestCrashRecovery drops the server without any shutdown (buffered WAL
// frames are lost, like a kill -9) at several points and checks that
// recovery — snapshot plus WAL tail, or a from-scratch rebuild plus full
// replay — reproduces exactly the acknowledged mutations.
func TestCrashRecovery(t *testing.T) {
	for _, withSnapshot := range []bool{false, true} {
		t.Run(fmt.Sprintf("snapshot=%v", withSnapshot), func(t *testing.T) {
			dir := t.TempDir()
			cfg := LiveConfig{WALDir: filepath.Join(dir, "wal")}
			if withSnapshot {
				cfg.SnapshotPath = filepath.Join(dir, "snap")
			}
			s, l := liveServer(t, cfg)
			var acked []core.Mutation
			post := func(body string, muts ...core.Mutation) {
				t.Helper()
				rec, _ := do(t, s, "POST", "/update", body)
				if rec.Code == http.StatusOK {
					acked = append(acked, muts...)
				}
			}
			post(`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [4, 40], "weight": 2}]}`,
				core.Mutation{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(4), engine.Int(40)}, Weight: 2})
			post(`{"mutations": [{"op": "reweight", "rel": "Adv", "vals": [1, 10], "weight": 0.75}]}`,
				core.Mutation{Op: core.MutReweight, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(10)}, Weight: 0.75})
			if withSnapshot {
				if err := l.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
			post(`{"mutations": [{"op": "delete", "rel": "Adv", "vals": [1, 11]}]}`,
				core.Mutation{Op: core.MutDelete, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(11)}})
			if len(acked) != 3 {
				t.Fatalf("acked %d mutations", len(acked))
			}

			// Crash: no Close, no flush. Reopen from disk.
			s2, l2 := liveServer(t, cfg)
			defer l2.Close()
			for _, q := range []string{boolQ, "Q(a) :- Adv(4,a)", "Q(s) :- Adv(s,10)"} {
				got := queryProb(t, s2, q)
				want := scratchProb(t, acked, q)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("query %s after recovery: %v, from-scratch %v", q, got, want)
				}
			}
			// Recovered server keeps accepting updates with continuing seqs.
			rec, out := do(t, s2, "POST", "/update",
				`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [6, 60], "weight": 1.1}]}`)
			if rec.Code != http.StatusOK {
				t.Fatalf("post-recovery update: %d %s", rec.Code, rec.Body)
			}
			if seq := out["seq"].(float64); seq != 4 {
				t.Fatalf("post-recovery seq %v want 4", seq)
			}
		})
	}
}

// TestCrashRecoveryFaultInjection fails the WAL fsync from a chosen point
// on: later updates are not acknowledged, and recovery must still serve every
// acknowledged one. Unacknowledged mutations may or may not survive — the
// contract is only about acks.
func TestCrashRecoveryFaultInjection(t *testing.T) {
	boom := errors.New("injected fsync failure")
	for failFrom := 1; failFrom <= 3; failFrom++ {
		var mu sync.Mutex
		syncs := 0
		dir := t.TempDir()
		cfg := LiveConfig{
			WALDir: filepath.Join(dir, "wal"),
			Hooks: wal.Hooks{BeforeSync: func() error {
				mu.Lock()
				defer mu.Unlock()
				syncs++
				if syncs >= failFrom {
					return boom
				}
				return nil
			}},
		}
		s, _ := liveServer(t, cfg)
		var acked []core.Mutation
		for i := 0; i < 3; i++ {
			body := fmt.Sprintf(`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [%d, 90], "weight": 2}]}`, 20+i)
			rec, _ := do(t, s, "POST", "/update", body)
			if rec.Code == http.StatusOK {
				acked = append(acked, core.Mutation{
					Op: core.MutInsert, Rel: "Adv",
					Vals: []engine.Value{engine.Int(int64(20 + i)), engine.Int(90)}, Weight: 2,
				})
			}
		}
		if len(acked) >= 3 {
			t.Fatalf("failFrom=%d: every update acked despite fsync failures", failFrom)
		}

		// Crash and recover without hooks.
		s2, l2 := liveServer(t, LiveConfig{WALDir: cfg.WALDir})
		for _, m := range acked {
			q := fmt.Sprintf("Q(a) :- Adv(%d,a)", m.Vals[0].Int)
			if got := queryProb(t, s2, q); got <= 0 {
				t.Fatalf("failFrom=%d: acked insert %v lost after recovery", failFrom, m.Vals)
			}
		}
		l2.Close()
	}
}

// TestUpdateQueryInterleave hammers concurrent readers against a writer: any
// successfully answered query must equal the from-scratch answer of some
// prefix of the applied batches — never a stale cached value (run with
// -race).
func TestUpdateQueryInterleave(t *testing.T) {
	dir := t.TempDir()
	s, l := liveServer(t, LiveConfig{WALDir: filepath.Join(dir, "wal")})
	defer l.Close()

	batches := []core.Mutation{
		{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(12)}, Weight: 3},
		{Op: core.MutReweight, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(10)}, Weight: 0.5},
		{Op: core.MutDelete, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(11)}},
		{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(13)}, Weight: 1.5},
		{Op: core.MutReweight, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(13)}, Weight: 4},
		{Op: core.MutDelete, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(12)}},
		{Op: core.MutInsert, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(14)}, Weight: 2},
		{Op: core.MutReweight, Rel: "Adv", Vals: []engine.Value{engine.Int(1), engine.Int(14)}, Weight: 0.25},
	}
	// Every prefix's from-scratch answer, keyed at full precision: the set of
	// values a reader may legally observe.
	legal := map[string]bool{}
	for k := 0; k <= len(batches); k++ {
		legal[fmt.Sprintf("%.17g", scratchProb(t, batches[:k], boolQ))] = true
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				p := queryProb(t, s, boolQ)
				if !legal[fmt.Sprintf("%.17g", p)] {
					t.Errorf("observed stale/impossible answer %v", p)
					return
				}
			}
		}()
	}
	for i, m := range batches {
		var body string
		switch m.Op {
		case core.MutInsert:
			body = fmt.Sprintf(`{"mutations": [{"op": "insert", "rel": "Adv", "vals": [%d, %d], "weight": %g}]}`,
				m.Vals[0].Int, m.Vals[1].Int, m.Weight)
		case core.MutDelete:
			body = fmt.Sprintf(`{"mutations": [{"op": "delete", "rel": "Adv", "vals": [%d, %d]}]}`,
				m.Vals[0].Int, m.Vals[1].Int)
		case core.MutReweight:
			body = fmt.Sprintf(`{"mutations": [{"op": "reweight", "rel": "Adv", "vals": [%d, %d], "weight": %g}]}`,
				m.Vals[0].Int, m.Vals[1].Int, m.Weight)
		}
		rec, _ := do(t, s, "POST", "/update", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch %d: code %d body %s", i, rec.Code, rec.Body)
		}
	}
	close(done)
	wg.Wait()
	if got, want := queryProb(t, s, boolQ), scratchProb(t, batches, boolQ); math.Abs(got-want) > 1e-12 {
		t.Fatalf("final prob %v want %v", got, want)
	}
}
