package lineage

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Formula is a general Boolean formula tree over positive-integer variables.
// It is the feature language of the MLN substrate and the ground-truth
// representation for tests.
type Formula interface {
	// Eval evaluates under the assignment.
	Eval(assign func(v int) bool) bool
	// CollectVars adds the formula's variables to the set.
	CollectVars(set map[int]bool)
	// String renders the formula.
	String() string
}

// Var is a variable leaf.
type Var int

// Eval implements Formula.
func (x Var) Eval(assign func(v int) bool) bool { return assign(int(x)) }

// CollectVars implements Formula.
func (x Var) CollectVars(set map[int]bool) { set[int(x)] = true }

func (x Var) String() string { return "x" + strconv.Itoa(int(x)) }

// Const is a constant leaf.
type Const bool

// Eval implements Formula.
func (c Const) Eval(func(v int) bool) bool { return bool(c) }

// CollectVars implements Formula.
func (c Const) CollectVars(map[int]bool) {}

func (c Const) String() string {
	if c {
		return "true"
	}
	return "false"
}

// Not negates a formula.
type Not struct{ F Formula }

// Eval implements Formula.
func (n Not) Eval(assign func(v int) bool) bool { return !n.F.Eval(assign) }

// CollectVars implements Formula.
func (n Not) CollectVars(set map[int]bool) { n.F.CollectVars(set) }

func (n Not) String() string { return "¬" + n.F.String() }

// And is a conjunction; the empty conjunction is true.
type And []Formula

// Eval implements Formula.
func (a And) Eval(assign func(v int) bool) bool {
	for _, f := range a {
		if !f.Eval(assign) {
			return false
		}
	}
	return true
}

// CollectVars implements Formula.
func (a And) CollectVars(set map[int]bool) {
	for _, f := range a {
		f.CollectVars(set)
	}
}

func (a And) String() string { return joinFormulas([]Formula(a), " ∧ ", "true") }

// Or is a disjunction; the empty disjunction is false.
type Or_ []Formula

// Eval implements Formula.
func (o Or_) Eval(assign func(v int) bool) bool {
	for _, f := range o {
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

// CollectVars implements Formula.
func (o Or_) CollectVars(set map[int]bool) {
	for _, f := range o {
		f.CollectVars(set)
	}
}

func (o Or_) String() string { return joinFormulas([]Formula(o), " ∨ ", "false") }

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// FromDNF converts a DNF to a formula tree.
func FromDNF(d DNF) Formula {
	terms := make([]Formula, len(d))
	for i, t := range d {
		lits := make([]Formula, len(t))
		for j, v := range t {
			lits[j] = Var(v)
		}
		terms[i] = And(lits)
	}
	return Or_(terms)
}

// FormulaVars returns the sorted variables of a formula.
func FormulaVars(f Formula) []int {
	set := map[int]bool{}
	f.CollectVars(set)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// BruteForceProbFormula computes the exact probability of an arbitrary
// formula by enumeration, analogous to BruteForceProb. Supports over 30
// variables are refused with an error rather than enumerated.
func BruteForceProbFormula(f Formula, probs []float64) (float64, error) {
	vars := FormulaVars(f)
	if len(vars) > 30 {
		return 0, fmt.Errorf("lineage: brute force over %d variables (max 30)", len(vars))
	}
	total := 0.0
	for mask := 0; mask < 1<<uint(len(vars)); mask++ {
		assign := map[int]bool{}
		p := 1.0
		for i, v := range vars {
			if mask&(1<<uint(i)) != 0 {
				assign[v] = true
				p *= probs[v]
			} else {
				p *= 1 - probs[v]
			}
		}
		if f.Eval(func(v int) bool { return assign[v] }) {
			total += p
		}
	}
	return total, nil
}
