package lineage

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randDNF is a quick.Generator for random monotone DNFs over ≤ 6 variables.
type randDNF struct {
	NumVars int
	D       DNF
}

// Generate implements quick.Generator.
func (randDNF) Generate(rng *rand.Rand, size int) reflect.Value {
	nv := 1 + rng.Intn(6)
	d := make(DNF, rng.Intn(6))
	for i := range d {
		term := make([]int, 1+rng.Intn(4))
		for j := range term {
			term[j] = 1 + rng.Intn(nv)
		}
		d[i] = term
	}
	return reflect.ValueOf(randDNF{NumVars: nv, D: d})
}

func equalOnAllAssignments(nv int, a, b DNF) bool {
	for mask := 0; mask < 1<<uint(nv); mask++ {
		assign := func(v int) bool { return mask&(1<<uint(v-1)) != 0 }
		if a.Eval(assign) != b.Eval(assign) {
			return false
		}
	}
	return true
}

// TestQuickNormalizeSemantics: Normalize never changes the Boolean function.
func TestQuickNormalizeSemantics(t *testing.T) {
	f := func(c randDNF) bool {
		return equalOnAllAssignments(c.NumVars, c.D, c.D.Normalize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalizeIdempotent: Normalize is a canonical form.
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(c randDNF) bool {
		n := c.D.Normalize()
		return n.Normalize().String() == n.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrSemantics: Or(a, b) evaluates as disjunction.
func TestQuickOrSemantics(t *testing.T) {
	f := func(c1, c2 randDNF) bool {
		nv := c1.NumVars
		if c2.NumVars > nv {
			nv = c2.NumVars
		}
		o := Or(c1.D, c2.D)
		for mask := 0; mask < 1<<uint(nv); mask++ {
			assign := func(v int) bool { return mask&(1<<uint(v-1)) != 0 }
			if o.Eval(assign) != (c1.D.Eval(assign) || c2.D.Eval(assign)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickInclusionExclusion: P(a ∨ b) = P(a) + P(b) - P(a ∧ b) holds for
// the product measure, with negative probabilities too (Section 3.3).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(c1, c2 randDNF, seed int64) bool {
		nv := c1.NumVars
		if c2.NumVars > nv {
			nv = c2.NumVars
		}
		rng := rand.New(rand.NewSource(seed))
		probs := make([]float64, nv+1)
		for i := 1; i <= nv; i++ {
			probs[i] = rng.Float64()*2 - 0.5
		}
		// a ∧ b as DNF: cross product of terms.
		var and DNF
		for _, t1 := range c1.D {
			for _, t2 := range c2.D {
				and = append(and, Term(append(append([]int{}, t1...), t2...)...))
			}
		}
		pOr := bfProb(Or(c1.D, c2.D), probs)
		pA := bfProb(c1.D, probs)
		pB := bfProb(c2.D, probs)
		pAnd := bfProb(and, probs)
		return math.Abs(pOr-(pA+pB-pAnd)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickNegationRule: P(¬f) = 1 - P(f) under any probability vector.
func TestQuickNegationRule(t *testing.T) {
	f := func(c randDNF, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		probs := make([]float64, c.NumVars+1)
		for i := 1; i <= c.NumVars; i++ {
			probs[i] = rng.Float64()*3 - 1
		}
		fm := FromDNF(c.D)
		p := bfProbF(fm, probs)
		np := bfProbF(Not{F: fm}, probs)
		return math.Abs(p+np-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
