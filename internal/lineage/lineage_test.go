package lineage

import (
	"math"
	"math/rand"
	"testing"
)

func TestDNFBasics(t *testing.T) {
	if !False().IsFalse() {
		t.Error("False not false")
	}
	if !True().IsTrue() {
		t.Error("True not true")
	}
	d := DNF{{1, 2}, {3}}
	if d.IsTrue() || d.IsFalse() {
		t.Error("d misclassified")
	}
	vars := d.Vars()
	if len(vars) != 3 || vars[0] != 1 || vars[2] != 3 {
		t.Errorf("Vars = %v", vars)
	}
	if d.Size() != 3 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestDNFEval(t *testing.T) {
	d := DNF{{1, 2}, {3}}
	tru := map[int]bool{1: true, 2: true}
	if !d.Eval(func(v int) bool { return tru[v] }) {
		t.Error("x1x2 should satisfy")
	}
	tru = map[int]bool{1: true}
	if d.Eval(func(v int) bool { return tru[v] }) {
		t.Error("x1 alone should not satisfy")
	}
	tru = map[int]bool{3: true}
	if !d.Eval(func(v int) bool { return tru[v] }) {
		t.Error("x3 should satisfy")
	}
}

func TestTermDedup(t *testing.T) {
	got := Term(3, 1, 3, 2, 1)
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Term = %v want %v", got, want)
	}
}

func TestNormalizeAbsorption(t *testing.T) {
	d := DNF{{1, 2}, {1}, {2, 1}, {3, 4}, {4, 3, 1}}
	n := d.Normalize()
	// {1} absorbs {1,2} and {1,3,4}; {3,4} stays.
	if len(n) != 2 {
		t.Fatalf("Normalize = %v", n)
	}
	if len(n[0]) != 1 || n[0][0] != 1 || len(n[1]) != 2 {
		t.Errorf("Normalize = %v", n)
	}
}

func TestNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nv := 1 + rng.Intn(6)
		d := make(DNF, rng.Intn(6))
		for i := range d {
			term := make([]int, 1+rng.Intn(4))
			for j := range term {
				term[j] = 1 + rng.Intn(nv)
			}
			d[i] = term
		}
		n := d.Normalize()
		for mask := 0; mask < 1<<uint(nv); mask++ {
			assign := func(v int) bool { return mask&(1<<uint(v-1)) != 0 }
			if d.Eval(assign) != n.Eval(assign) {
				t.Fatalf("Normalize changed semantics: %v vs %v at mask %b", d, n, mask)
			}
		}
	}
}

func TestOr(t *testing.T) {
	a := DNF{{1}}
	b := DNF{{2}}
	if got := Or(a, b); len(got) != 2 {
		t.Errorf("Or = %v", got)
	}
	if got := Or(nil, b); len(got) != 1 {
		t.Errorf("Or(nil,b) = %v", got)
	}
}

func TestBruteForceProb(t *testing.T) {
	// P(x1 ∨ x2) = p1 + p2 - p1p2.
	probs := []float64{0, 0.3, 0.6}
	d := DNF{{1}, {2}}
	want := 0.3 + 0.6 - 0.18
	if got := bfProb(d, probs); math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v want %v", got, want)
	}
	// P(x1 ∧ x2) = p1p2.
	d = DNF{{1, 2}}
	if got := bfProb(d, probs); math.Abs(got-0.18) > 1e-12 {
		t.Errorf("P(and) = %v", got)
	}
	if got := bfProb(True(), probs); got != 1 {
		t.Errorf("P(true) = %v", got)
	}
	if got := bfProb(False(), probs); got != 0 {
		t.Errorf("P(false) = %v", got)
	}
}

func TestBruteForceProbNegative(t *testing.T) {
	// Negative probabilities: inclusion-exclusion must still hold.
	probs := []float64{0, -0.5, 0.4}
	d := DNF{{1}, {2}}
	want := -0.5 + 0.4 - (-0.5)*0.4
	if got := bfProb(d, probs); math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v want %v", got, want)
	}
}

func TestFormulaEval(t *testing.T) {
	// (x1 ∧ ¬x2) ∨ x3
	f := Or_{And{Var(1), Not{Var(2)}}, Var(3)}
	cases := []struct {
		assign map[int]bool
		want   bool
	}{
		{map[int]bool{1: true}, true},
		{map[int]bool{1: true, 2: true}, false},
		{map[int]bool{3: true, 2: true}, true},
		{map[int]bool{}, false},
	}
	for _, c := range cases {
		got := f.Eval(func(v int) bool { return c.assign[v] })
		if got != c.want {
			t.Errorf("Eval(%v) = %v want %v", c.assign, got, c.want)
		}
	}
	vars := FormulaVars(f)
	if len(vars) != 3 {
		t.Errorf("FormulaVars = %v", vars)
	}
}

func TestFromDNFAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		nv := 1 + rng.Intn(5)
		d := make(DNF, rng.Intn(5))
		for i := range d {
			term := make([]int, 1+rng.Intn(3))
			for j := range term {
				term[j] = 1 + rng.Intn(nv)
			}
			d[i] = term
		}
		f := FromDNF(d)
		probs := make([]float64, nv+1)
		for i := 1; i <= nv; i++ {
			probs[i] = rng.Float64()
		}
		a, b := bfProb(d, probs), bfProbF(f, probs)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("DNF %v: %v vs %v", d, a, b)
		}
	}
}

func TestConstFormula(t *testing.T) {
	if !Const(true).Eval(nil) || Const(false).Eval(nil) {
		t.Error("Const eval wrong")
	}
	if bfProbF(Const(true), []float64{0}) != 1 {
		t.Error("P(true) != 1")
	}
	if got := (Not{Const(false)}).String(); got != "¬false" {
		t.Errorf("String = %q", got)
	}
}

func TestStrings(t *testing.T) {
	if s := (DNF{{1, 2}, {3}}).String(); s != "(x1 ∧ x2) ∨ (x3)" {
		t.Errorf("DNF string = %q", s)
	}
	if s := False().String(); s != "false" {
		t.Errorf("false string = %q", s)
	}
	if s := True().String(); s != "true" {
		t.Errorf("true string = %q", s)
	}
	f := Or_{And{Var(1), Var(2)}}
	if s := f.String(); s != "((x1 ∧ x2))" {
		t.Errorf("formula string = %q", s)
	}
}

// bfProb and bfProbF wrap the error-returning brute-force evaluators for
// test fixtures known to stay within the 30-variable limit.
func bfProb(d DNF, probs []float64) float64 {
	p, err := BruteForceProb(d, probs)
	if err != nil {
		panic(err)
	}
	return p
}

func bfProbF(f Formula, probs []float64) float64 {
	p, err := BruteForceProbFormula(f, probs)
	if err != nil {
		panic(err)
	}
	return p
}

// TestBruteForceTooLargeRefused: supports beyond 30 variables return an
// error instead of panicking.
func TestBruteForceTooLargeRefused(t *testing.T) {
	term := make([]int, 31)
	probs := make([]float64, 32)
	for i := range term {
		term[i] = i + 1
		probs[i+1] = 0.5
	}
	if _, err := BruteForceProb(DNF{term}, probs); err == nil {
		t.Error("BruteForceProb over 31 variables: want error, got nil")
	}
	if _, err := BruteForceProbFormula(FromDNF(DNF{term}), probs); err == nil {
		t.Error("BruteForceProbFormula over 31 variables: want error, got nil")
	}
}
