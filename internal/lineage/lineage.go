// Package lineage represents Boolean lineage expressions of queries over
// tuple-independent probabilistic databases.
//
// The lineage of a UCQ is monotone and is represented as a DNF: a disjunction
// of conjunctions of positive Boolean variables (tuple ids). General formula
// trees (with negation) are also provided, mainly as ground truth for tests
// and as the feature language of the MLN substrate.
package lineage

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DNF is a monotone Boolean formula in disjunctive normal form: an OR of
// AND-terms, each term a set of positive variable ids. The empty DNF is
// false; a DNF containing an empty term is true.
type DNF [][]int

// False and True are the constant lineages.
func False() DNF { return nil }

// True returns the DNF containing one empty term.
func True() DNF { return DNF{{}} }

// IsFalse reports whether the DNF has no terms.
func (d DNF) IsFalse() bool { return len(d) == 0 }

// IsTrue reports whether some term is empty (hence always satisfied).
func (d DNF) IsTrue() bool {
	for _, t := range d {
		if len(t) == 0 {
			return true
		}
	}
	return false
}

// Vars returns the sorted set of variables appearing in the DNF.
func (d DNF) Vars() []int {
	seen := map[int]bool{}
	for _, t := range d {
		for _, v := range t {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Or returns the disjunction of two DNFs (concatenation of term lists).
func Or(a, b DNF) DNF {
	if len(a) == 0 {
		return b
	}
	out := make(DNF, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Term builds a single AND-term from variable ids, deduplicated and sorted.
func Term(vars ...int) []int {
	t := append([]int(nil), vars...)
	sort.Ints(t)
	out := t[:0]
	for i, v := range t {
		if i == 0 || v != t[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Normalize sorts variables within terms, removes duplicate variables,
// removes duplicate and absorbed terms (a term is absorbed when a subset of
// it is also a term), and sorts the term list. The result is a canonical
// form suitable for comparison.
func (d DNF) Normalize() DNF {
	terms := make(DNF, 0, len(d))
	seen := map[string]bool{}
	for _, t := range d {
		nt := Term(t...)
		k := termKey(nt)
		if !seen[k] {
			seen[k] = true
			terms = append(terms, nt)
		}
	}
	// Absorption: drop any term that is a superset of another term.
	sort.Slice(terms, func(i, j int) bool { return len(terms[i]) < len(terms[j]) })
	kept := make(DNF, 0, len(terms))
	for _, t := range terms {
		absorbed := false
		for _, k := range kept {
			if isSubset(k, t) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, t)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return compareTerms(kept[i], kept[j]) < 0 })
	return kept
}

func isSubset(a, b []int) bool { // both sorted
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

func compareTerms(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] - b[i]
		}
	}
	return len(a) - len(b)
}

func termKey(t []int) string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}

// Eval evaluates the DNF under the assignment.
func (d DNF) Eval(assign func(v int) bool) bool {
	for _, t := range d {
		ok := true
		for _, v := range t {
			if !assign(v) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// String renders the DNF, e.g. "(x1 ∧ x2) ∨ (x3)".
func (d DNF) String() string {
	if d.IsFalse() {
		return "false"
	}
	parts := make([]string, len(d))
	for i, t := range d {
		if len(t) == 0 {
			return "true"
		}
		vs := make([]string, len(t))
		for j, v := range t {
			vs[j] = "x" + strconv.Itoa(v)
		}
		parts[i] = "(" + strings.Join(vs, " ∧ ") + ")"
	}
	return strings.Join(parts, " ∨ ")
}

// Size returns the number of literal occurrences (the paper's "lineage
// size": tuples involved in the constraints, counted with multiplicity).
func (d DNF) Size() int {
	n := 0
	for _, t := range d {
		n += len(t)
	}
	return n
}

// Hash returns a 128-bit canonical hash of the DNF: invariant under term
// reordering, variable reordering within a term, and duplicate variables in
// a term, and (up to hash collisions) distinct for semantically distinct
// term sets. Duplicate terms do shift the hash — callers that may produce
// duplicates should Normalize first; the evaluator's accumulator already
// deduplicates, so query lineages hash canonically as produced.
//
// Per-term hashes are combined commutatively (sum and xor), so hashing is
// O(size) with no sorting of the term list.
func (d DNF) Hash() (hi, lo uint64) {
	var sum, xor uint64
	for _, t := range d {
		th := uint64(1099511628211)
		n := 0
		if sortedInts(t) {
			for _, v := range t {
				th = hashMix(th, uint64(v))
			}
			n = len(t)
		} else {
			st := append([]int(nil), t...)
			sort.Ints(st)
			for i, v := range st {
				if i > 0 && v == st[i-1] {
					continue
				}
				th = hashMix(th, uint64(v))
				n++
			}
		}
		th = hashMix(th, uint64(n))
		sum += th
		xor ^= th
	}
	// Mix in the term count so the empty DNF (false) and DNF{{}} (true)
	// differ and sum/xor cancellations cannot collide with small sets.
	hi = hashMix(sum, uint64(len(d)))
	lo = hashMix(xor, hi)
	if hi == 0 && lo == 0 {
		lo = 1
	}
	return hi, lo
}

func sortedInts(t []int) bool {
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return false
		}
	}
	return true
}

func hashMix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// BruteForceProb computes the exact probability of the DNF by enumerating
// all assignments of its support variables. probs is indexed by variable id
// and may contain negative entries (Section 3.3 of the paper); the sum of
// products is still the correct weight-relative measure. Supports over 30
// variables are refused with an error rather than enumerated.
func BruteForceProb(d DNF, probs []float64) (float64, error) {
	vars := d.Vars()
	if len(vars) > 30 {
		return 0, fmt.Errorf("lineage: brute force over %d variables (max 30)", len(vars))
	}
	total := 0.0
	n := len(vars)
	for mask := 0; mask < 1<<uint(n); mask++ {
		assign := map[int]bool{}
		p := 1.0
		for i, v := range vars {
			if mask&(1<<uint(i)) != 0 {
				assign[v] = true
				p *= probs[v]
			} else {
				p *= 1 - probs[v]
			}
		}
		if d.Eval(func(v int) bool { return assign[v] }) {
			total += p
		}
	}
	return total, nil
}
