package dblp

import (
	"math"
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/mvindex"
	"mvdb/internal/ucq"
)

func TestGenerateStructure(t *testing.T) {
	d, err := Generate(Config{NumAuthors: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db := d.DB
	for _, rel := range []string{"Author", "Wrote", "Pub", "FirstPub", "Student", "Advisor"} {
		if db.Relation(rel).Len() == 0 {
			t.Errorf("relation %s empty", rel)
		}
	}
	if len(d.Advisors) == 0 || len(d.Students) == 0 {
		t.Fatal("no advisors or students")
	}
	if db.Relation("Author").Len() != 400 {
		t.Errorf("authors = %d", db.Relation("Author").Len())
	}
	// Six Student tuples per student (Fig. 1: 6M for 1M authors).
	if got, want := db.Relation("Student").Len(), 6*len(d.Students); got != want {
		t.Errorf("Student tuples = %d want %d", got, want)
	}
	if len(d.MaddenAdvisors) == 0 {
		t.Error("no Madden advisors")
	}
	// Generation is deterministic.
	d2, _ := Generate(Config{NumAuthors: 400, Seed: 1})
	if d2.DB.NumVars() != db.NumVars() {
		t.Errorf("non-deterministic generation: %d vs %d vars", d2.DB.NumVars(), db.NumVars())
	}
	d3, _ := Generate(Config{NumAuthors: 400, Seed: 2})
	if d3.DB.Relation("Pub").Len() == db.Relation("Pub").Len() && d3.DB.NumVars() == db.NumVars() {
		t.Log("different seeds produced identical sizes (possible but suspicious)")
	}
}

func TestViewsNonEmpty(t *testing.T) {
	d, err := Generate(Config{NumAuthors: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.MVDB()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := m.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, vt := range tuples {
		counts[vt.View]++
		if vt.View == "V1" && vt.Weight < 1.5 {
			t.Errorf("V1 weight %v < 1.5 (count/2 with count > 2)", vt.Weight)
		}
		if vt.View == "V2" && vt.Weight != 0 {
			t.Errorf("V2 weight %v != 0", vt.Weight)
		}
	}
	for _, v := range []string{"V1", "V2", "V3"} {
		if counts[v] == 0 {
			t.Errorf("view %s is empty", v)
		}
	}
}

func TestAdvisorWeightsFormula(t *testing.T) {
	d, err := Generate(Config{NumAuthors: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	adv := d.DB.Relation("Advisor")
	for _, tup := range adv.Tuples {
		c := d.copubStudy[[2]int64{tup.Vals[0].Int, tup.Vals[1].Int}]
		if c <= 2 {
			t.Fatalf("Advisor tuple with count %d <= 2", c)
		}
		want := math.Exp(0.25 * float64(c))
		if math.Abs(tup.Weight-want) > 1e-9 {
			t.Errorf("Advisor weight %v want %v", tup.Weight, want)
		}
	}
	// Student weights follow exp(1 - 0.15 dy).
	st := d.DB.Relation("Student")
	fp := d.DB.Relation("FirstPub")
	first := map[int64]int64{}
	for _, tup := range fp.Tuples {
		first[tup.Vals[0].Int] = tup.Vals[1].Int
	}
	for _, tup := range st.Tuples[:20] {
		dy := tup.Vals[1].Int - first[tup.Vals[0].Int]
		want := math.Exp(1 - 0.15*float64(dy))
		if math.Abs(tup.Weight-want) > 1e-9 {
			t.Errorf("Student weight %v want %v (dy=%d)", tup.Weight, want, dy)
		}
	}
}

func TestTranslationAndIndexPipeline(t *testing.T) {
	d, err := Generate(Config{NumAuthors: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.MVDB()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.DenialViews) != 1 || tr.DenialViews[0] != "V2" {
		t.Errorf("denial views = %v", tr.DenialViews)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() == 0 || ix.Blocks() < 2 {
		t.Errorf("index size=%d blocks=%d", ix.Size(), ix.Blocks())
	}

	// Cross-check MV-index against the Translation's OBDD path on several
	// queries, for both intersection algorithms.
	for _, s := range d.Students[:5] {
		q := QueryAdvisorOfStudent(s)
		want, err := tr.Query(q, core.MethodOBDD)
		if err != nil {
			t.Fatal(err)
		}
		for _, cc := range []bool{false, true} {
			got, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: cc})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("student %d: %d vs %d answers", s, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
					t.Errorf("student %d cc=%v: %v vs %v", s, cc, got[i].Prob, want[i].Prob)
				}
				if got[i].Prob < -1e-9 || got[i].Prob > 1+1e-9 {
					t.Errorf("probability %v outside [0,1]", got[i].Prob)
				}
			}
		}
	}
}

func TestMaddenRunningExample(t *testing.T) {
	d, err := Generate(Config{NumAuthors: 600, Seed: 9, MaddenEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MaddenAdvisors) < 2 {
		t.Fatalf("Madden advisors = %v", d.MaddenAdvisors)
	}
	m, err := d.MVDB(d.V1, d.V2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	q := QueryStudentsOfAdvisor("%Madden%")
	rows, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no students of Madden advisors found")
	}
	// Every returned student must indeed have a Madden advisor candidate.
	madden := map[int64]bool{}
	for _, a := range d.MaddenAdvisors {
		madden[a] = true
	}
	adv := d.DB.Relation("Advisor")
	for _, r := range rows {
		s := r.Head[0].Int
		found := false
		for _, ti := range adv.MatchingIndexes(0, engine.Int(s)) {
			if madden[adv.Tuples[ti].Vals[1].Int] {
				found = true
			}
		}
		if !found {
			t.Errorf("student %d returned but has no Madden advisor", s)
		}
		if r.Prob <= 0 || r.Prob > 1 {
			t.Errorf("student %d probability %v", s, r.Prob)
		}
	}
}

// TestMicroEndToEndExact validates the full DBLP pipeline against exhaustive
// Definition 4 enumeration on a micro instance.
func TestMicroEndToEndExact(t *testing.T) {
	d, err := Generate(Config{NumAuthors: 4, AdvisorEvery: 2, Seed: 11, SecondAdvisorPct: 100})
	if err != nil {
		t.Fatal(err)
	}
	if d.DB.NumVars() > 20 {
		t.Skipf("micro instance has %d vars; exact enumeration infeasible", d.DB.NumVars())
	}
	m, err := d.MVDB()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Students {
		q := QueryAdvisorOfStudent(s)
		rows, err := ix.Query(q, mvindex.IntersectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			b, err := q.Bind(r.Head)
			if err != nil {
				t.Fatal(err)
			}
			want, err := m.ProbExact(b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r.Prob-want) > 1e-8 {
				t.Errorf("student %d advisor %v: index %v exact %v", s, r.Head, r.Prob, want)
			}
		}
	}
}

// TestStudentTableMatchesDeclarativeDefinition: the generator's Studentp
// must be exactly what the Figure 1 declarative definition produces through
// core.DefineProbTable.
func TestStudentTableMatchesDeclarativeDefinition(t *testing.T) {
	d, err := Generate(Config{NumAuthors: 120, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	db := d.DB
	// Calendar table covering the generator's year range.
	db.MustCreateRelation("Calendar", true, "year")
	for y := int64(1980); y <= 2030; y++ {
		db.MustInsertDet("Calendar", engine.Int(y))
	}
	first := map[int64]int64{}
	for _, tup := range db.Relation("FirstPub").Tuples {
		first[tup.Vals[0].Int] = tup.Vals[1].Int
	}
	students := map[int64]bool{}
	for _, s := range d.Students {
		students[s] = true
	}
	q := ucq.MustParse("Student2(aid,year) :- FirstPub(aid,yp), Calendar(year), year >= yp - 1, year <= yp + 4")
	n, err := core.DefineProbTable(db, q, func(head []engine.Value) float64 {
		dy := head[1].Int - first[head[0].Int]
		return math.Exp(1 - 0.15*float64(dy))
	})
	if err != nil {
		t.Fatal(err)
	}
	// The declarative table covers ALL authors; the generator only makes
	// students. Every generator tuple must appear with an equal weight.
	gen := db.Relation("Student")
	decl := db.Relation("Student2")
	if n < gen.Len() {
		t.Fatalf("declarative table smaller than generated: %d vs %d", n, gen.Len())
	}
	for _, tup := range gen.Tuples {
		i := decl.Lookup(tup.Vals)
		if i < 0 {
			t.Fatalf("generated tuple %v missing from declarative table", tup.Vals)
		}
		if math.Abs(decl.Tuples[i].Weight-tup.Weight) > 1e-9 {
			t.Errorf("weight mismatch at %v: %v vs %v", tup.Vals, decl.Tuples[i].Weight, tup.Weight)
		}
	}
	// And declarative tuples for student authors must all be generated.
	for _, tup := range decl.Tuples {
		if students[tup.Vals[0].Int] && gen.Lookup(tup.Vals) < 0 {
			t.Errorf("declarative tuple %v missing from generator output", tup.Vals)
		}
	}
}

func TestZipfAdvisors(t *testing.T) {
	uni, err := Generate(Config{NumAuthors: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := Generate(Config{NumAuthors: 2000, Seed: 3, ZipfAdvisors: true})
	if err != nil {
		t.Fatal(err)
	}
	maxStudents := func(d *Dataset) int {
		counts := map[int64]int{}
		for _, a := range d.StudentAdvisor {
			counts[a]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	mu, mz := maxStudents(uni), maxStudents(zipf)
	if mz <= 2*mu {
		t.Errorf("Zipf skew too weak: max students uniform=%d zipf=%d", mu, mz)
	}
	// The skewed dataset still runs through the full pipeline.
	m, err := zipf.MVDB(zipf.V1, zipf.V2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ix.Query(QueryStudentsOfAdvisorID(zipf.StudentAdvisor[zipf.Students[0]]),
		mvindex.IntersectOptions{CacheConscious: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Prob < -1e-9 || r.Prob > 1+1e-9 {
			t.Errorf("probability %v outside [0,1]", r.Prob)
		}
	}
}
