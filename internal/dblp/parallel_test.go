package dblp

import (
	"testing"

	"mvdb/internal/core"
	"mvdb/internal/mvindex"
)

// TestParallelCompileMatchesSequentialDBLP builds the MV-index for the DBLP
// views — V1, V2, V3 individually and all together — once with the
// sequential reference compiler and once with 8 workers, and requires
// bitwise-identical index statistics and P0(¬W). This is the Parallelism
// property test on the paper's actual workload shapes: V1's weighted union,
// V2's denial self-join, V3's deterministic-join view.
func TestParallelCompileMatchesSequentialDBLP(t *testing.T) {
	d, err := Generate(Config{NumAuthors: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sets := map[string][]*core.MarkoView{
		"V1":  {d.V1},
		"V2":  {d.V2},
		"V3":  {d.V3},
		"all": {d.V1, d.V2, d.V3},
	}
	for name, views := range sets {
		t.Run(name, func(t *testing.T) {
			build := func(par int) (*core.Translation, *mvindex.Index) {
				m, err := d.MVDB(views...)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := m.Translate(core.TranslateOptions{})
				if err != nil {
					t.Fatal(err)
				}
				tr.Parallelism = par
				ix, err := mvindex.Build(tr)
				if err != nil {
					t.Fatal(err)
				}
				return tr, ix
			}
			_, seq := build(1)
			_, par := build(8)
			if a, b := seq.Size(), par.Size(); a != b {
				t.Errorf("size: sequential %d, parallel %d", a, b)
			}
			if a, b := seq.Width(), par.Width(); a != b {
				t.Errorf("width: sequential %d, parallel %d", a, b)
			}
			if a, b := seq.Blocks(), par.Blocks(); a != b {
				t.Errorf("blocks: sequential %d, parallel %d", a, b)
			}
			la, sa := seq.LogProbNotW()
			lb, sb := par.LogProbNotW()
			if la != lb || sa != sb {
				t.Errorf("LogProbNotW: (%v,%d) vs (%v,%d) — must be bitwise equal", la, sa, lb, sb)
			}
			// Answers must agree bitwise between the two indexes and between
			// sequential and 8-worker answer loops.
			for _, s := range d.Students[:3] {
				q := QueryAdvisorOfStudent(s)
				want, err := seq.Query(q, mvindex.IntersectOptions{Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				got, err := par.Query(q, mvindex.IntersectOptions{Parallelism: 8, CacheConscious: true})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("student %d: %d vs %d answers", s, len(got), len(want))
				}
				for i := range got {
					if got[i].Prob != want[i].Prob {
						t.Errorf("student %d answer %d: %v vs %v", s, i, got[i].Prob, want[i].Prob)
					}
				}
			}
		})
	}
}
