// Package dblp generates a synthetic DBLP-like dataset reproducing the
// structure of Figure 1 of the paper: the deterministic base tables
// (Author, Wrote, Pub, HomePage), the derived views (FirstPub,
// DBLPAffiliation), the probabilistic tables (Studentp, Advisorp,
// Affiliationp) with the paper's weight formulas, and the MarkoViews V1,
// V2, V3.
//
// The real DBLP dump is proprietary-sized (1M authors); the generator is
// seeded and scales with the aid domain, the knob the paper's experiments
// sweep (Section 5.1-5.3). The co-authorship structure is synthetic but
// preserves what the experiments measure: advisor-student co-publication
// clusters during the student years, occasional second advisor candidates
// (so V2 is non-empty), shared-institute collaboration clusters (so V3 is
// non-empty), and a family of similarly-named "Madden" advisors for the
// running example of Figure 2.
package dblp

import (
	"fmt"
	"math"
	"math/rand"

	"mvdb/internal/core"
	"mvdb/internal/engine"
	"mvdb/internal/ucq"
)

// Config parameterizes the generator.
type Config struct {
	// NumAuthors is the aid domain size (the x-axis of Figures 4-8).
	NumAuthors int
	// Seed makes generation deterministic.
	Seed int64
	// AdvisorEvery: author i is an advisor when i % AdvisorEvery == 0
	// (default 8).
	AdvisorEvery int
	// SecondAdvisorPct is the percentage of students with a second advisor
	// candidate (default 20) — these populate V2.
	SecondAdvisorPct int
	// MaddenEvery: every MaddenEvery-th advisor is named "... Madden ..."
	// (default 40), giving the paper's "48 similarly named advisors" shape
	// at large scales.
	MaddenEvery int
	// Institutes is the number of distinct affiliations (default
	// max(2, NumAuthors/500)).
	Institutes int
	// V3CountThreshold replaces the paper's count(pid) > 30 filter; the
	// synthetic co-authorship graph is sparser than real DBLP, so the
	// default is 4 (documented substitution).
	V3CountThreshold int
	// ZipfAdvisors skews advisor popularity like real co-authorship graphs:
	// students pick advisors with probability ∝ 1/rank^1.1 instead of
	// uniformly. Off by default to keep blocks evenly sized.
	ZipfAdvisors bool
}

func (c Config) withDefaults() Config {
	if c.NumAuthors <= 0 {
		c.NumAuthors = 1000
	}
	if c.AdvisorEvery <= 0 {
		c.AdvisorEvery = 8
	}
	if c.SecondAdvisorPct <= 0 {
		c.SecondAdvisorPct = 20
	}
	if c.MaddenEvery <= 0 {
		c.MaddenEvery = 40
	}
	if c.Institutes <= 0 {
		c.Institutes = c.NumAuthors / 500
		if c.Institutes < 2 {
			c.Institutes = 2
		}
	}
	if c.V3CountThreshold <= 0 {
		c.V3CountThreshold = 4
	}
	return c
}

// Dataset is the generated database plus the Fig. 1 MarkoViews and handles
// used by the experiments.
type Dataset struct {
	Config Config
	DB     *engine.Database

	V1, V2, V3 *core.MarkoView

	Advisors       []int64
	Students       []int64
	MaddenAdvisors []int64
	StudentAdvisor map[int64]int64 // primary advisor of each student

	copubStudy map[[2]int64]int // (student, advisor) -> co-pubs during study
	copubV3    map[[2]int64]int // (a1, a2) -> recent co-pubs above threshold
}

// MVDB assembles an MVDB over the dataset with the given views (defaults to
// V1, V2, V3 when none are named). Passing a subset mirrors Section 5.1,
// which uses only V1 and V2 for the Alchemy comparison.
func (d *Dataset) MVDB(views ...*core.MarkoView) (*core.MVDB, error) {
	m := core.New(d.DB)
	if len(views) == 0 {
		views = []*core.MarkoView{d.V1, d.V2, d.V3}
	}
	for _, v := range views {
		if v == nil {
			continue
		}
		if err := m.AddView(v); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Generate builds the dataset.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.NewDatabase()
	db.MustCreateRelation("Author", true, "aid", "name")
	db.MustCreateRelation("Wrote", true, "aid", "pid")
	db.MustCreateRelation("Pub", true, "pid", "title", "year")
	db.MustCreateRelation("HomePage", true, "aid", "url")
	db.MustCreateRelation("FirstPub", true, "aid", "year")
	db.MustCreateRelation("DBLPAffiliation", true, "aid", "inst")
	db.MustCreateRelation("CoPubV3", true, "aid1", "aid2") // footnote 3: materialized count(pid) > T filter
	db.MustCreateRelation("Student", false, "aid", "year")
	db.MustCreateRelation("Advisor", false, "aid1", "aid2")
	db.MustCreateRelation("Affiliation", false, "aid", "inst")

	d := &Dataset{
		Config:         cfg,
		DB:             db,
		StudentAdvisor: map[int64]int64{},
		copubStudy:     map[[2]int64]int{},
		copubV3:        map[[2]int64]int{},
	}

	n := int64(cfg.NumAuthors)
	firstPub := map[int64]int64{}
	advisorInst := map[int64]int64{}
	var pid int64

	// Authors: advisors are senior (early first publication).
	advisorIdx := 0
	for aid := int64(1); aid <= n; aid++ {
		isAdvisor := aid%int64(cfg.AdvisorEvery) == 0
		var name string
		if isAdvisor {
			advisorIdx++
			if advisorIdx%cfg.MaddenEvery == 0 {
				name = fmt.Sprintf("S. Madden %d", aid)
				d.MaddenAdvisors = append(d.MaddenAdvisors, aid)
			} else {
				name = fmt.Sprintf("Prof. Author %d", aid)
			}
			d.Advisors = append(d.Advisors, aid)
			firstPub[aid] = 1985 + rng.Int63n(10)
			inst := 1 + rng.Int63n(int64(cfg.Institutes))
			advisorInst[aid] = inst
			db.MustInsertDet("HomePage", engine.Int(aid), engine.Str(fmt.Sprintf("http://u%d.edu/~a%d", inst, aid)))
			db.MustInsertDet("DBLPAffiliation", engine.Int(aid), engine.Str(instName(inst)))
		} else {
			name = fmt.Sprintf("Author %d", aid)
			d.Students = append(d.Students, aid)
			firstPub[aid] = 2000 + rng.Int63n(10)
		}
		db.MustInsertDet("Author", engine.Int(aid), engine.Str(name))
	}
	if len(d.Advisors) == 0 {
		return nil, fmt.Errorf("dblp: no advisors generated (NumAuthors=%d too small)", cfg.NumAuthors)
	}

	wrote := map[[2]int64]bool{}
	addPub := func(year int64, authors ...int64) {
		pid++
		db.MustInsertDet("Pub", engine.Int(pid), engine.Str(fmt.Sprintf("Paper %d", pid)), engine.Int(year))
		for _, a := range authors {
			if !wrote[[2]int64{a, pid}] {
				wrote[[2]int64{a, pid}] = true
				db.MustInsertDet("Wrote", engine.Int(a), engine.Int(pid))
			}
		}
	}

	// Student-advisor co-publication clusters. Advisor choice is uniform by
	// default, Zipf-distributed when configured.
	pickAdvisor := func() int64 { return d.Advisors[rng.Intn(len(d.Advisors))] }
	if cfg.ZipfAdvisors && len(d.Advisors) > 1 {
		z := rand.NewZipf(rng, 1.1, 1, uint64(len(d.Advisors)-1))
		pickAdvisor = func() int64 { return d.Advisors[z.Uint64()] }
	}
	for _, s := range d.Students {
		adv := pickAdvisor()
		d.StudentAdvisor[s] = adv
		y0 := firstPub[s]
		k := 3 + rng.Intn(3) // >2 co-pubs, required by the Advisorp rule
		for i := 0; i < k; i++ {
			addPub(y0+rng.Int63n(4), s, adv)
			d.copubStudy[[2]int64{s, adv}]++
		}
		if rng.Intn(100) < cfg.SecondAdvisorPct && len(d.Advisors) > 1 {
			adv2 := pickAdvisor()
			for adv2 == adv {
				adv2 = pickAdvisor()
			}
			k2 := 3 + rng.Intn(2)
			for i := 0; i < k2; i++ {
				addPub(y0+rng.Int63n(4), s, adv2)
				d.copubStudy[[2]int64{s, adv2}]++
			}
		}
		// A solo noise paper.
		if rng.Intn(3) == 0 {
			addPub(y0+rng.Int63n(6), s)
		}
	}

	// Recent collaboration clusters between students sharing an advisor's
	// institute: populate Affiliationp and V3.
	recentCopub := map[[2]int64]int{}
	affCount := map[[2]int64]int{} // (student, inst) -> recent co-pubs with that inst
	for i := 0; i+1 < len(d.Students); i += 7 {
		s1, s2 := d.Students[i], d.Students[i+1]
		adv := d.StudentAdvisor[s1]
		k := cfg.V3CountThreshold + 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			year := int64(2006) + rng.Int63n(8)
			addPub(year, s1, s2, adv)
			recentCopub[pairKey(s1, s2)]++
			affCount[[2]int64{s1, advisorInst[adv]}]++
			affCount[[2]int64{s2, advisorInst[adv]}]++
		}
	}

	// FirstPub derived view.
	for aid := int64(1); aid <= n; aid++ {
		db.MustInsertDet("FirstPub", engine.Int(aid), engine.Int(firstPub[aid]))
	}

	// Studentp: a student in the years around the first publication, weight
	// exp(1 - 0.15 (year - year')).
	for _, s := range d.Students {
		y0 := firstPub[s]
		for dy := int64(-1); dy <= 4; dy++ {
			w := math.Exp(1 - 0.15*float64(dy))
			db.MustInsert("Student", w, engine.Int(s), engine.Int(y0+dy))
		}
	}

	// Advisorp: pairs with more than 2 co-publications during the student
	// years, weight exp(0.25 count).
	for pair, c := range d.copubStudy {
		if c <= 2 {
			continue
		}
		w := math.Exp(0.25 * float64(c))
		db.MustInsert("Advisor", w, engine.Int(pair[0]), engine.Int(pair[1]))
	}

	// Affiliationp: inferred affiliations for authors without a
	// DBLPAffiliation, weight exp(0.1 count).
	for key, c := range affCount {
		if c == 0 {
			continue
		}
		w := math.Exp(0.1 * float64(c))
		db.MustInsert("Affiliation", w, engine.Int(key[0]), engine.Str(instName(key[1])))
	}

	// CoPubV3: the footnote-3 materialization of "count(pid) > T over recent
	// co-publications" used in V3's body.
	for pair, c := range recentCopub {
		if c > cfg.V3CountThreshold {
			db.MustInsertDet("CoPubV3", engine.Int(pair[0]), engine.Int(pair[1]))
			d.copubV3[pair] = c
		}
	}

	d.buildViews()
	return d, nil
}

func (d *Dataset) buildViews() {
	// V1(aid1,aid2)[count(pid)/2] :- Advisor(aid1,aid2), Student(aid1,year),
	// Wrote(aid1,pid), Wrote(aid2,pid), Pub(pid,title,year).
	v1q := ucq.MustParse("V1(aid1,aid2) :- Advisor(aid1,aid2), Student(aid1,year), Wrote(aid1,pid), Wrote(aid2,pid), Pub(pid,title,year)")
	d.V1 = &core.MarkoView{
		Name: "V1", Head: v1q.Head, Def: v1q.UCQ,
		Weight: func(head []engine.Value) float64 {
			c := d.copubStudy[[2]int64{head[0].Int, head[1].Int}]
			return float64(c) / 2
		},
	}
	// V2(aid1,aid2,aid3)[0] :- Advisor(aid1,aid2), Advisor(aid1,aid3),
	// aid2 <> aid3 — the denial view "a person has only one advisor".
	v2q := ucq.MustParse("V2(aid1,aid2,aid3) :- Advisor(aid1,aid2), Advisor(aid1,aid3), aid2 <> aid3")
	d.V2 = &core.MarkoView{Name: "V2", Head: v2q.Head, Def: v2q.UCQ, Weight: core.ConstWeight(0)}
	// V3(aid1,aid2,inst)[count(pid)/5] :- Affiliation(aid1,inst),
	// Affiliation(aid2,inst), CoPubV3(aid1,aid2) — where CoPubV3 is the
	// materialized recent-co-publication filter.
	v3q := ucq.MustParse("V3(aid1,aid2,inst) :- Affiliation(aid1,inst), Affiliation(aid2,inst), CoPubV3(aid1,aid2)")
	d.V3 = &core.MarkoView{
		Name: "V3", Head: v3q.Head, Def: v3q.UCQ,
		Weight: func(head []engine.Value) float64 {
			c := d.copubV3[pairKey(head[0].Int, head[1].Int)]
			return float64(c) / 5
		},
	}

	// Freeze the closure weights into serializable WeightTables by
	// enumerating each view's materialized heads: the per-head values are
	// identical to the closures by construction, and the tables survive
	// snapshot/restore, which the live-update write path requires. The
	// Default of 1 applies only to heads first materialized by live
	// mutations — weight 1 means unconstrained (the translation prunes such
	// tuples), the conservative reading for pairs with no recorded co-pub
	// counts. V2 is a pure denial view: every head, present or future,
	// weighs 0.
	for _, v := range []*core.MarkoView{d.V1, d.V3} {
		tmp := core.New(d.DB)
		if err := tmp.AddView(v); err != nil {
			panic(err) // names are fixed above; cannot clash
		}
		vts, err := tmp.Materialize()
		if err != nil {
			panic(err) // generator weights are finite and non-negative
		}
		wt := &core.WeightTable{Default: 1}
		for _, vt := range vts {
			wt.Set(vt.Head, vt.Weight)
		}
		v.Weights, v.Weight = wt, nil
	}
	d.V2.Weights, d.V2.Weight = &core.WeightTable{Default: 0}, nil
}

func instName(i int64) string { return fmt.Sprintf("u%d.edu", i) }

func pairKey(a, b int64) [2]int64 {
	if a > b {
		a, b = b, a
	}
	return [2]int64{a, b}
}

// QueryStudentsOfAdvisor is the running example of Figure 2: all students
// advised by an author whose name matches the pattern.
func QueryStudentsOfAdvisor(namePattern string) *ucq.Query {
	return ucq.MustParse(fmt.Sprintf(
		"Q(aid) :- Student(aid,year), Advisor(aid,a), Author(a,n), n like '%s'", namePattern))
}

// QueryStudentsOfAdvisorID returns the students of one advisor by id
// (Figure 6/10 workload).
func QueryStudentsOfAdvisorID(advisor int64) *ucq.Query {
	return ucq.MustParse(fmt.Sprintf("Q(aid) :- Student(aid,year), Advisor(aid,%d)", advisor))
}

// QueryAdvisorOfStudent returns the advisors of one student (Figure 5
// workload).
func QueryAdvisorOfStudent(student int64) *ucq.Query {
	return ucq.MustParse(fmt.Sprintf("Q(a) :- Student(%d,year), Advisor(%d,a)", student, student))
}

// QueryAffiliationOfAuthor returns the inferred affiliations of one author
// (Figure 11 workload).
func QueryAffiliationOfAuthor(aid int64) *ucq.Query {
	return ucq.MustParse(fmt.Sprintf("Q(inst) :- Affiliation(%d,inst)", aid))
}
