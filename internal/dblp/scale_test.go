package dblp

import (
	"testing"
	"time"

	"mvdb/internal/core"
	"mvdb/internal/mvindex"
)

func TestScaleTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("scale timing test skipped in short mode")
	}
	for _, n := range []int{2000, 10000} {
		t0 := time.Now()
		d, err := Generate(Config{NumAuthors: n, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		tGen := time.Since(t0)
		m, _ := d.MVDB()
		t0 = time.Now()
		tr, err := m.Translate(core.TranslateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tTr := time.Since(t0)
		t0 = time.Now()
		ix, err := mvindex.Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		tIx := time.Since(t0)
		t0 = time.Now()
		q := QueryAdvisorOfStudent(d.Students[len(d.Students)/2])
		if _, err := ix.Query(q, mvindex.IntersectOptions{CacheConscious: true}); err != nil {
			t.Fatal(err)
		}
		tQ := time.Since(t0)
		t.Logf("n=%d vars=%d gen=%v translate=%v index(size=%d,blocks=%d)=%v query=%v",
			n, d.DB.NumVars(), tGen, tTr, ix.Size(), ix.Blocks(), tIx, tQ)
	}
}
