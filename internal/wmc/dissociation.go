package wmc

import (
	"fmt"
	"math"

	"mvdb/internal/lineage"
)

// DissociationBounds computes oblivious upper and lower bounds on P(d)
// (Gatterbauer, Jha & Suciu — reference [11] of the paper: "Dissociation
// and propagation for efficient query evaluation over probabilistic
// databases"). Every variable occurring in k > 1 terms is dissociated into
// k fresh copies, making the DNF read-once so its probability has a closed
// form:
//
//   - copies keep the original probability p        → an upper bound;
//   - copies use p' = 1 − (1−p)^(1/k)               → a lower bound.
//
// The bounds are exact (lo == hi == P) when the DNF is already read-once.
// Like all sampling/bounding machinery, this requires genuine
// probabilities: entries outside [0, 1] are rejected, which is why the
// MarkoView translation itself sticks to exact methods (Section 3.3) —
// bounds apply to plain INDBs, e.g. the query side before translation.
func DissociationBounds(d lineage.DNF, probs []float64) (lo, hi float64, err error) {
	nd := normalize(d)
	if len(nd) == 0 {
		return 0, 0, nil
	}
	if len(nd[0]) == 0 {
		return 1, 1, nil
	}
	occurrences := map[int]int{}
	for _, t := range nd {
		for _, v := range t {
			occurrences[v]++
		}
	}
	for v := range occurrences {
		if probs[v] < 0 || probs[v] > 1 {
			return 0, 0, fmt.Errorf("wmc: variable %d has probability %v outside [0,1]; dissociation bounds need a true probability space", v, probs[v])
		}
	}
	// Read-once after full dissociation: P = 1 - Π_terms (1 - Π p(v)).
	readOnce := func(adjust bool) float64 {
		prod := 1.0
		for _, t := range nd {
			termP := 1.0
			for _, v := range t {
				p := probs[v]
				if adjust {
					if k := occurrences[v]; k > 1 {
						p = 1 - math.Pow(1-p, 1/float64(k))
					}
				}
				termP *= p
			}
			prod *= 1 - termP
		}
		return 1 - prod
	}
	return readOnce(true), readOnce(false), nil
}
