package wmc

import (
	"math/rand"
	"testing"

	"mvdb/internal/lineage"
)

func benchDNF(terms, nv int) (lineage.DNF, []float64) {
	rng := rand.New(rand.NewSource(1))
	d := make(lineage.DNF, terms)
	for i := range d {
		t := make([]int, 3)
		for j := range t {
			t[j] = 1 + rng.Intn(nv)
		}
		d[i] = lineage.Term(t...)
	}
	probs := make([]float64, nv+1)
	for i := 1; i <= nv; i++ {
		probs[i] = rng.Float64()
	}
	return d, probs
}

// BenchmarkDPLLProb measures exact weighted model counting on a DNF with
// moderate sharing.
func BenchmarkDPLLProb(b *testing.B) {
	d, probs := benchDNF(40, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prob(d, probs)
	}
}

// BenchmarkKarpLuby measures the FPRAS at 10k samples on the same DNF.
func BenchmarkKarpLuby(b *testing.B) {
	d, probs := benchDNF(40, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KarpLuby(d, probs, KarpLubyOptions{Samples: 10000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDissociationBounds measures the closed-form bounds.
func BenchmarkDissociationBounds(b *testing.B) {
	d, probs := benchDNF(200, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DissociationBounds(d, probs); err != nil {
			b.Fatal(err)
		}
	}
}
