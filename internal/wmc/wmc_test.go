package wmc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mvdb/internal/lineage"
)

func randomDNF(rng *rand.Rand, nv int) lineage.DNF {
	d := make(lineage.DNF, 1+rng.Intn(6))
	for i := range d {
		term := make([]int, 1+rng.Intn(4))
		for j := range term {
			term[j] = 1 + rng.Intn(nv)
		}
		d[i] = lineage.Term(term...)
	}
	return d
}

func TestProbAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		nv := 2 + rng.Intn(7)
		d := randomDNF(rng, nv)
		probs := make([]float64, nv+1)
		for i := 1; i <= nv; i++ {
			probs[i] = rng.Float64()
		}
		want := bfProb(d, probs)
		got := Prob(d, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: %v vs %v on %v", trial, got, want, d)
		}
	}
}

func TestProbNegativeProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		nv := 2 + rng.Intn(6)
		d := randomDNF(rng, nv)
		probs := make([]float64, nv+1)
		for i := 1; i <= nv; i++ {
			probs[i] = rng.Float64()*3 - 1.5
		}
		want := bfProb(d, probs)
		got := Prob(d, probs)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
	}
}

func TestProbTerminals(t *testing.T) {
	probs := []float64{0, 0.5}
	if Prob(lineage.False(), probs) != 0 {
		t.Error("P(false) != 0")
	}
	if Prob(lineage.True(), probs) != 1 {
		t.Error("P(true) != 1")
	}
	if got := Prob(lineage.DNF{{1}}, probs); got != 0.5 {
		t.Errorf("P(x1) = %v", got)
	}
}

func TestSolverStats(t *testing.T) {
	// Independent components: (x1∧x2) ∨ (x3∧x4) must use the component rule.
	probs := []float64{0, 0.5, 0.5, 0.5, 0.5}
	s := NewSolver(probs)
	p := s.Prob(lineage.DNF{{1, 2}, {3, 4}})
	if math.Abs(p-(1-0.75*0.75)) > 1e-12 {
		t.Errorf("P = %v", p)
	}
	if s.Stats().ComponentSplits == 0 {
		t.Error("component decomposition not used")
	}
	// Shared variables force Shannon expansion.
	s2 := NewSolver(probs)
	s2.Prob(lineage.DNF{{1, 2}, {1, 3}, {2, 3}})
	if s2.Stats().ShannonSteps == 0 {
		t.Error("Shannon expansion not used")
	}
	// Cache reuse across calls.
	s3 := NewSolver(probs)
	d := lineage.DNF{{1, 2}, {2, 3}, {1, 3}}
	s3.Prob(d)
	s3.Prob(d)
	if s3.Stats().CacheHits == 0 {
		t.Error("cache not reused")
	}
}

func TestKarpLubyConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		nv := 3 + rng.Intn(5)
		d := randomDNF(rng, nv)
		probs := make([]float64, nv+1)
		for i := 1; i <= nv; i++ {
			probs[i] = rng.Float64()
		}
		want := Prob(d, probs)
		got, err := KarpLuby(d, probs, KarpLubyOptions{Samples: 200000, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.02 {
			t.Errorf("trial %d: KL = %v exact = %v", trial, got, want)
		}
	}
}

func TestKarpLubyRejectsNegativeProbabilities(t *testing.T) {
	// Section 3.3: sampling methods do not survive the translation's
	// negative probabilities.
	d := lineage.DNF{{1}, {2}}
	probs := []float64{0, 0.5, -0.25}
	if _, err := KarpLuby(d, probs, KarpLubyOptions{Samples: 100, Seed: 1}); err == nil {
		t.Error("Karp-Luby accepted a negative probability")
	}
	probs = []float64{0, 0.5, 1.25}
	if _, err := KarpLuby(d, probs, KarpLubyOptions{Samples: 100, Seed: 1}); err == nil {
		t.Error("Karp-Luby accepted a probability above 1")
	}
}

func TestKarpLubyTerminals(t *testing.T) {
	probs := []float64{0, 0.5}
	if p, err := KarpLuby(lineage.False(), probs, KarpLubyOptions{Samples: 10, Seed: 1}); err != nil || p != 0 {
		t.Errorf("KL(false) = %v, %v", p, err)
	}
	if p, err := KarpLuby(lineage.True(), probs, KarpLubyOptions{Samples: 10, Seed: 1}); err != nil || p != 1 {
		t.Errorf("KL(true) = %v, %v", p, err)
	}
	// All-zero probabilities.
	if p, err := KarpLuby(lineage.DNF{{1}}, []float64{0, 0}, KarpLubyOptions{Samples: 10, Seed: 1}); err != nil || p != 0 {
		t.Errorf("KL(zero) = %v, %v", p, err)
	}
}

func TestProbLargeSafeChain(t *testing.T) {
	// A long independent chain must be handled by decomposition, not 2^n
	// enumeration: 60 disjoint conjuncts.
	var d lineage.DNF
	probs := make([]float64, 121)
	for i := 0; i < 60; i++ {
		d = append(d, []int{2*i + 1, 2*i + 2})
		probs[2*i+1] = 0.5
		probs[2*i+2] = 0.5
	}
	want := 1 - math.Pow(0.75, 60)
	got := Prob(d, probs)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("P = %v want %v", got, want)
	}
}

type quickDNF struct {
	NumVars int
	D       lineage.DNF
	Probs   []float64
}

func (quickDNF) Generate(rng *rand.Rand, size int) reflect.Value {
	nv := 2 + rng.Intn(6)
	d := make(lineage.DNF, 1+rng.Intn(5))
	for i := range d {
		term := make([]int, 1+rng.Intn(4))
		for j := range term {
			term[j] = 1 + rng.Intn(nv)
		}
		d[i] = lineage.Term(term...)
	}
	probs := make([]float64, nv+1)
	for i := 1; i <= nv; i++ {
		probs[i] = rng.Float64()*2.4 - 0.7
	}
	return reflect.ValueOf(quickDNF{NumVars: nv, D: d, Probs: probs})
}

// TestQuickWMCAgainstBruteForce: the DPLL counter is exact on arbitrary
// probability vectors, negative entries included.
func TestQuickWMCAgainstBruteForce(t *testing.T) {
	f := func(c quickDNF) bool {
		want := bfProb(c.D, c.Probs)
		got := Prob(c.D, c.Probs)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickWMCNegationLaw: P(d) + P(¬d) = 1 under the product measure,
// where P(¬d) is evaluated by brute force (the DNF of ¬d is exponential).
func TestQuickWMCNegationLaw(t *testing.T) {
	f := func(c quickDNF) bool {
		p := Prob(c.D, c.Probs)
		notP := bfProbF(lineage.Not{F: lineage.FromDNF(c.D)}, c.Probs)
		return math.Abs(p+notP-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDissociationBoundsSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		nv := 2 + rng.Intn(6)
		d := randomDNF(rng, nv)
		probs := make([]float64, nv+1)
		for i := 1; i <= nv; i++ {
			probs[i] = rng.Float64()
		}
		exact := Prob(d, probs)
		lo, hi, err := DissociationBounds(d, probs)
		if err != nil {
			t.Fatal(err)
		}
		if lo > exact+1e-9 || hi < exact-1e-9 {
			t.Fatalf("trial %d: bounds [%v, %v] miss exact %v on %v", trial, lo, hi, exact, d)
		}
	}
}

func TestDissociationBoundsTightOnReadOnce(t *testing.T) {
	// (x1∧x2) ∨ (x3∧x4): no shared variables, bounds collapse to the exact
	// probability.
	d := lineage.DNF{{1, 2}, {3, 4}}
	probs := []float64{0, 0.3, 0.6, 0.2, 0.9}
	exact := Prob(d, probs)
	lo, hi, err := DissociationBounds(d, probs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-exact) > 1e-12 || math.Abs(hi-exact) > 1e-12 {
		t.Errorf("read-once bounds [%v, %v] vs exact %v", lo, hi, exact)
	}
}

func TestDissociationBoundsRejectNegative(t *testing.T) {
	d := lineage.DNF{{1}, {1, 2}}
	if _, _, err := DissociationBounds(d, []float64{0, -0.5, 0.5}); err == nil {
		t.Error("negative probability accepted")
	}
	// Terminals.
	if lo, hi, err := DissociationBounds(lineage.False(), nil); err != nil || lo != 0 || hi != 0 {
		t.Errorf("false bounds = %v %v %v", lo, hi, err)
	}
	if lo, hi, err := DissociationBounds(lineage.True(), nil); err != nil || lo != 1 || hi != 1 {
		t.Errorf("true bounds = %v %v %v", lo, hi, err)
	}
}

func TestDissociationBoundsOnH0(t *testing.T) {
	// The classic hard query's lineage: x_i shared across terms. Bounds
	// must bracket the exact probability computed by the DPLL solver.
	var d lineage.DNF
	probs := []float64{0}
	v := 0
	next := func(p float64) int { v++; probs = append(probs, p); return v }
	rng := rand.New(rand.NewSource(23))
	rs := make([]int, 4)
	ts := make([]int, 4)
	for i := range rs {
		rs[i] = next(rng.Float64())
		ts[i] = next(rng.Float64())
	}
	for i := range rs {
		for j := range ts {
			s := next(rng.Float64())
			d = append(d, []int{rs[i], s, ts[j]})
		}
	}
	exact := Prob(d, probs)
	lo, hi, err := DissociationBounds(d, probs)
	if err != nil {
		t.Fatal(err)
	}
	if lo > exact || hi < exact {
		t.Errorf("H0 bounds [%v, %v] miss %v", lo, hi, exact)
	}
	if hi-lo <= 0 {
		t.Errorf("H0 bounds degenerate: [%v, %v]", lo, hi)
	}
}

// bfProb and bfProbF wrap the error-returning brute-force evaluators for
// test fixtures known to stay within the 30-variable limit.
func bfProb(d lineage.DNF, probs []float64) float64 {
	p, err := lineage.BruteForceProb(d, probs)
	if err != nil {
		panic(err)
	}
	return p
}

func bfProbF(f lineage.Formula, probs []float64) float64 {
	p, err := lineage.BruteForceProbFormula(f, probs)
	if err != nil {
		panic(err)
	}
	return p
}
