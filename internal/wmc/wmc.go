// Package wmc implements weighted model counting over monotone DNF lineage:
// an exact Davis-Putnam-style procedure (Shannon expansion on the most
// frequent variable, independent-component decomposition, and caching — the
// method family the paper cites for MystiQ-style probabilistic databases
// [3, 17]) and the Karp-Luby FPRAS for DNF probability.
//
// The exact procedure is valid verbatim for negative probabilities
// (Section 3.3 of the paper): Shannon expansion and the independence law
// are polynomial identities of the product measure. Karp-Luby, being a
// sampling method, is NOT — it requires genuine probabilities in [0, 1],
// and the package enforces that, matching the paper's observation that
// approximation methods "no longer work out-of-the-box".
package wmc

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"mvdb/internal/lineage"
)

// Prob computes the exact probability of the DNF under the per-variable
// probability vector (indexed by variable id; entries may be negative).
func Prob(d lineage.DNF, probs []float64) float64 {
	s := &solver{probs: probs, cache: map[string]float64{}}
	return s.prob(normalize(d))
}

// Stats reports the work done by the last Prob call when using a Solver.
type Stats struct {
	ShannonSteps    int
	ComponentSplits int
	CacheHits       int
}

// Solver is a reusable exact solver that exposes statistics.
type Solver struct {
	inner *solver
}

// NewSolver creates a solver for a fixed probability vector.
func NewSolver(probs []float64) *Solver {
	return &Solver{inner: &solver{probs: probs, cache: map[string]float64{}}}
}

// Prob computes P(d), sharing the cache across calls.
func (s *Solver) Prob(d lineage.DNF) float64 { return s.inner.prob(normalize(d)) }

// Stats returns cumulative statistics.
func (s *Solver) Stats() Stats { return s.inner.stats }

type solver struct {
	probs []float64
	cache map[string]float64
	stats Stats
}

// dnf is the internal normalized representation: sorted terms of sorted
// variable ids, no duplicates, no absorbed terms.
type dnf [][]int

func normalize(d lineage.DNF) dnf {
	return dnf(d.Normalize())
}

func (d dnf) key() string {
	var b strings.Builder
	for _, t := range d {
		for _, v := range t {
			b.WriteString(strconv.Itoa(v))
			b.WriteByte(',')
		}
		b.WriteByte(';')
	}
	return b.String()
}

func (s *solver) prob(d dnf) float64 {
	if len(d) == 0 {
		return 0
	}
	if len(d[0]) == 0 {
		return 1 // normalized form puts the empty (true) term first
	}
	if len(d) == 1 {
		// Single term: product of its variables' probabilities.
		p := 1.0
		for _, v := range d[0] {
			p *= s.probs[v]
		}
		return p
	}
	key := d.key()
	if p, ok := s.cache[key]; ok {
		s.stats.CacheHits++
		return p
	}

	var p float64
	if comps := components(d); len(comps) > 1 {
		// Independent union: P(∨ᵢ cᵢ) = 1 - Πᵢ (1 - P(cᵢ)).
		s.stats.ComponentSplits++
		prod := 1.0
		for _, c := range comps {
			prod *= 1 - s.prob(c)
		}
		p = 1 - prod
	} else {
		// Shannon expansion on the most frequent variable.
		s.stats.ShannonSteps++
		x := mostFrequent(d)
		px := s.probs[x]
		p = px*s.prob(restrict(d, x, true)) + (1-px)*s.prob(restrict(d, x, false))
	}
	s.cache[key] = p
	return p
}

// components partitions the terms into groups sharing no variables.
func components(d dnf) []dnf {
	parent := make([]int, len(d))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	varTerm := map[int]int{}
	for i, t := range d {
		for _, v := range t {
			if j, ok := varTerm[v]; ok {
				parent[find(i)] = find(j)
			} else {
				varTerm[v] = i
			}
		}
	}
	groups := map[int]dnf{}
	var order []int
	for i, t := range d {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], t)
	}
	out := make([]dnf, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// mostFrequent returns the variable occurring in the most terms.
func mostFrequent(d dnf) int {
	count := map[int]int{}
	for _, t := range d {
		for _, v := range t {
			count[v]++
		}
	}
	best, bestC := 0, -1
	for v, c := range count {
		if c > bestC || (c == bestC && v < best) {
			best, bestC = v, c
		}
	}
	return best
}

// restrict conditions the DNF on x = val and renormalizes (removing
// duplicate and absorbed terms, which keeps the cache keys canonical).
func restrict(d dnf, x int, val bool) dnf {
	out := make(lineage.DNF, 0, len(d))
	for _, t := range d {
		has := false
		for _, v := range t {
			if v == x {
				has = true
				break
			}
		}
		switch {
		case !has:
			out = append(out, t)
		case val:
			nt := make([]int, 0, len(t)-1)
			for _, v := range t {
				if v != x {
					nt = append(nt, v)
				}
			}
			out = append(out, nt)
		default:
			// dropped: term is false under x = 0
		}
	}
	return normalize(out)
}

// KarpLubyOptions configures the FPRAS.
type KarpLubyOptions struct {
	Samples int
	Seed    int64
}

// KarpLuby estimates P(d) with the Karp-Luby-Madras unbiased estimator for
// DNF counting. It requires genuine probabilities: any entry outside [0, 1]
// among the DNF's variables is rejected, because importance sampling over a
// signed "measure" is undefined — this is exactly why the MarkoView
// translation is restricted to exact methods (Section 3.3).
func KarpLuby(d lineage.DNF, probs []float64, opts KarpLubyOptions) (float64, error) {
	nd := normalize(d)
	if len(nd) == 0 {
		return 0, nil
	}
	if len(nd[0]) == 0 {
		return 1, nil
	}
	for _, v := range lineage.DNF(nd).Vars() {
		if probs[v] < 0 || probs[v] > 1 {
			return 0, fmt.Errorf("wmc: variable %d has probability %v outside [0,1]; Karp-Luby requires a true probability space", v, probs[v])
		}
	}
	if opts.Samples <= 0 {
		opts.Samples = 100000
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// P(term_i) and the union-bound normalizer T = Σ P(term_i).
	termP := make([]float64, len(nd))
	total := 0.0
	for i, t := range nd {
		p := 1.0
		for _, v := range t {
			p *= probs[v]
		}
		termP[i] = p
		total += p
	}
	if total == 0 {
		return 0, nil
	}
	// Cumulative distribution for picking a term ∝ its probability.
	cum := make([]float64, len(nd))
	acc := 0.0
	for i, p := range termP {
		acc += p
		cum[i] = acc
	}

	hits := 0
	assign := map[int]bool{}
	for s := 0; s < opts.Samples; s++ {
		// Pick term i ∝ P(term_i), then a world conditioned on term_i true.
		r := rng.Float64() * total
		i := sort.SearchFloat64s(cum, r)
		if i == len(cum) {
			i = len(cum) - 1
		}
		for k := range assign {
			delete(assign, k)
		}
		for _, v := range nd[i] {
			assign[v] = true
		}
		// The estimator counts the sample iff term_i is the FIRST satisfied
		// term; other variables are sampled lazily on demand.
		first := true
		for j := 0; j < i && first; j++ {
			sat := true
			for _, v := range nd[j] {
				val, ok := assign[v]
				if !ok {
					val = rng.Float64() < probs[v]
					assign[v] = val
				}
				if !val {
					sat = false
					break
				}
			}
			if sat {
				first = false
			}
		}
		if first {
			hits++
		}
	}
	return total * float64(hits) / float64(opts.Samples), nil
}
