package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayCorrupt checks the replay invariants over arbitrary single-byte
// corruption and truncation of a two-segment log:
//
//   - Replay never panics;
//   - the records the callback sees are always a strict prefix of the
//     original append order — corruption never skips, reorders or passes a
//     damaged record through;
//   - damage to the non-final segment that hides records is loud: a
//     positioned CorruptError, never a silent short replay;
//   - damage to the final segment may stop the replay early (the torn-tail
//     rule), but still only ever truncates the suffix.
func FuzzReplayCorrupt(f *testing.F) {
	f.Add(0, uint8(0x01), -1)
	f.Add(17, uint8(0xff), -1)
	f.Add(0, uint8(0), 10)
	f.Add(0, uint8(0), 0)
	f.Fuzz(func(t *testing.T, pos int, flip uint8, truncate int) {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var want [][]byte
		for i := 0; i < 8; i++ {
			rec := []byte(fmt.Sprintf("segment-one-record-%d", i))
			want = append(want, rec)
			l.Append(rec)
		}
		if _, err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			rec := []byte(fmt.Sprintf("segment-two-record-%d", i))
			want = append(want, rec)
			l.Append(rec)
		}
		l.Close()

		// Damage the log: flip one byte anywhere (bit rot), or truncate the
		// final segment (the only segment a torn write can reach — rotated
		// segments are immutable).
		seg1 := filepath.Join(dir, segName(1))
		seg2 := filepath.Join(dir, segName(2))
		b1, _ := os.ReadFile(seg1)
		b2, _ := os.ReadFile(seg2)
		total := len(b1) + len(b2)
		damagedFinal := false
		if truncate >= 0 {
			cut := truncate % (len(b2) + 1)
			os.WriteFile(seg2, b2[:cut], 0o644)
			damagedFinal = true
		} else if flip != 0 && total > 0 {
			p := pos % total
			if p < 0 {
				p += total
			}
			if p < len(b1) {
				b1[p] ^= flip
				os.WriteFile(seg1, b1, 0o644)
			} else {
				b2[p-len(b1)] ^= flip
				os.WriteFile(seg2, b2, 0o644)
				damagedFinal = true
			}
		}

		var got [][]byte
		err = Replay(dir, 0, func(seq uint64, rec []byte) error {
			got = append(got, append([]byte(nil), rec...))
			return nil
		})

		// Invariant: what the callback saw is a prefix of the append order.
		if len(got) > len(want) {
			t.Fatalf("replayed %d records, only %d were appended", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d: got %q want %q — replay skipped or corrupted a record", i, got[i], want[i])
			}
		}
		if err != nil {
			// Errors must be positioned.
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("replay error %v is not a positioned CorruptError", err)
			}
			if ce.Segment == "" || ce.Offset < 0 {
				t.Fatalf("CorruptError lacks a position: %+v", ce)
			}
			return
		}
		// Clean replay: records may only be missing when the damage hit the
		// final segment (torn-tail tolerance). A silent short replay with an
		// intact final segment means a non-final segment dropped records
		// without an error.
		if len(got) < len(want) && !damagedFinal && len(got) < 8 {
			t.Fatalf("replay silently dropped non-final-segment records: got %d of %d, damage in non-final segment", len(got), len(want))
		}
	})
}
