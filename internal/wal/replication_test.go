package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestAppendSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A follower bootstrapped from a snapshot covering seq 100 starts its
	// empty local log with a gap.
	if err := l.AppendSeq(101, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSeq(102, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Further gaps are legal (the primary's numbering rules).
	if err := l.AppendSeq(110, []byte("c")); err != nil {
		t.Fatal(err)
	}
	// Equal or lower sequence numbers are not.
	if err := l.AppendSeq(110, []byte("dup")); err == nil {
		t.Fatal("duplicate sequence number must be rejected")
	}
	if err := l.AppendSeq(50, []byte("old")); err == nil {
		t.Fatal("regressing sequence number must be rejected")
	}
	// Plain Append continues the line densely.
	seq, err := l.Append([]byte("d"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 111 {
		t.Fatalf("Append after AppendSeq(110) got seq %d, want 111", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, dir, 0)
	want := []uint64{101, 102, 110, 111}
	if len(seqs) != len(want) {
		t.Fatalf("replayed %v want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("replayed %v want %v", seqs, want)
		}
	}
	// Reopen resumes above the highest sequence number.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if seq, _ := l2.Append([]byte("e")); seq != 112 {
		t.Fatalf("reopened next seq %d want 112", seq)
	}
}

// TestSkipTo: an empty log re-anchored at a snapshot's covered position must
// assign fresh sequence numbers above it — and the durable horizon follows,
// since the skipped range holds no data.
func TestSkipTo(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.SkipTo(5)
	if got := l.SyncedSeq(); got != 5 {
		t.Fatalf("SyncedSeq after SkipTo(5) = %d, want 5", got)
	}
	l.SkipTo(3) // regressions are ignored
	seq, err := l.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("Append after SkipTo(5) assigned seq %d, want 6", seq)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A replay filtering at the snapshot position sees exactly the new frame.
	seqs, recs := collect(t, dir, 5)
	if len(seqs) != 1 || seqs[0] != 6 || string(recs[0]) != "x" {
		t.Fatalf("replay after 5: seqs %v recs %q", seqs, recs)
	}
}

func TestSyncedSeqAndWaitSynced(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.SyncedSeq(); got != 0 {
		t.Fatalf("fresh log SyncedSeq %d want 0", got)
	}
	l.Append([]byte("a"))
	if got := l.SyncedSeq(); got != 0 {
		t.Fatalf("unsynced append moved SyncedSeq to %d", got)
	}

	// WaitSynced returns immediately when the position is already past.
	l.Sync()
	got, err := l.WaitSynced(context.Background(), 0)
	if err != nil || got != 1 {
		t.Fatalf("WaitSynced(0) = %d, %v; want 1, nil", got, err)
	}

	// WaitSynced blocks until a concurrent Sync advances the position.
	done := make(chan uint64, 1)
	go func() {
		s, err := l.WaitSynced(context.Background(), 1)
		if err != nil {
			t.Error(err)
		}
		done <- s
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	l.Append([]byte("b"))
	l.Sync()
	select {
	case s := <-done:
		if s != 2 {
			t.Fatalf("woke at %d want 2", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitSynced never woke after Sync")
	}

	// Context cancellation unblocks a waiter.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := l.WaitSynced(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitSynced past the end: %v, want deadline exceeded", err)
	}
}

func TestWaitSyncedClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := l.WaitSynced(context.Background(), 10)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	l.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("WaitSynced on a closed log must error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitSynced never woke after Close")
	}
}

func TestReplayStop(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := 0; i < 10; i++ {
		l.Append([]byte(fmt.Sprintf("r%d", i)))
	}
	l.Close()
	var seen []uint64
	err := Replay(dir, 0, func(seq uint64, _ []byte) error {
		if seq > 4 {
			return ErrStopReplay
		}
		seen = append(seen, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStopReplay must end the replay cleanly, got %v", err)
	}
	if len(seen) != 4 {
		t.Fatalf("saw %v, want seqs 1..4", seen)
	}
}

// TestReplayCorruptMidSegment: corruption in a non-final segment surfaces as
// a CorruptError naming the segment and frame offset, the callback saw
// exactly the records before the corrupt frame, and nothing was skipped.
func TestReplayCorruptMidSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := 0; i < 6; i++ {
		l.Append([]byte(fmt.Sprintf("record-%d", i)))
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("in-segment-2"))
	l.Close()

	path := filepath.Join(dir, segName(1))
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame layout is fixed here: 8B header + 8B seq + 8B "record-N".
	frameLen := int64(frameHeader + seqBytes + len("record-0"))
	for frame := 0; frame < 6; frame++ {
		for _, hit := range []string{"crc", "length"} {
			b := append([]byte(nil), whole...)
			off := int64(frame) * frameLen
			switch hit {
			case "crc":
				b[off+frameHeader+seqBytes] ^= 0xff // payload byte
			case "length":
				b[off+1] = 0xff // length field → absurd frame length
			}
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			var seen []uint64
			rerr := Replay(dir, 0, func(seq uint64, _ []byte) error {
				seen = append(seen, seq)
				return nil
			})
			if rerr == nil {
				t.Fatalf("frame %d %s: corruption in a non-final segment must error", frame, hit)
			}
			var ce *CorruptError
			if !errors.As(rerr, &ce) {
				t.Fatalf("frame %d %s: error %v is not a CorruptError", frame, hit, rerr)
			}
			if ce.Segment != segName(1) {
				t.Fatalf("frame %d %s: positioned at segment %s", frame, hit, ce.Segment)
			}
			if ce.Offset != off {
				t.Fatalf("frame %d %s: positioned at offset %d, want %d", frame, hit, ce.Offset, off)
			}
			// Never skip: the callback saw exactly the frames before the
			// corruption, in order.
			if len(seen) != frame {
				t.Fatalf("frame %d %s: callback saw %v", frame, hit, seen)
			}
			for i, s := range seen {
				if s != uint64(i+1) {
					t.Fatalf("frame %d %s: callback saw %v", frame, hit, seen)
				}
			}
		}
	}
}
