// Package wal implements the append-only, CRC-framed, group-committed
// write-ahead log behind the live-update write path. The log is payload-
// agnostic (opaque byte records tagged with a monotone sequence number), so
// it has no dependency on the engine or core packages; the server encodes
// mutation batches into it.
//
// # Format
//
// A log is a directory of segment files wal-<generation>.log. Each segment
// is a sequence of frames:
//
//	[length u32][crc32 u32][payload]   payload = [seq u64][record bytes]
//
// all little-endian; the CRC (IEEE) covers the payload. Frames never span
// segments. A crash can tear the final frame of the final segment; Open
// truncates such a tail (the frame was never acknowledged — acknowledgment
// happens only after Sync returns). A CRC or framing error anywhere else is
// real corruption and surfaces as an error.
//
// # Durability contract
//
// Append buffers a frame and assigns its sequence number; the frame is
// durable only once a subsequent Sync returns nil. Sync is a group commit:
// one caller becomes the leader, optionally sleeps the commit window (with
// the log unlocked, so concurrent Appends coalesce into the same fsync),
// then flushes and fsyncs once for every frame appended so far. Callers that
// find their frame already synced return immediately.
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrStopReplay, returned by a Replay callback, ends the replay cleanly:
// Replay stops iterating and returns nil. Used by streaming readers that
// must not run past the durable (synced) prefix of a live log.
var ErrStopReplay = errors.New("wal: stop replay")

// CorruptError reports WAL corruption with its position: the segment file and
// the byte offset of the frame that failed to parse or checksum. Replay and
// Open return it (wrapped) for any corruption outside the tolerated torn
// final frame; errors.As extracts it.
type CorruptError struct {
	Segment string // segment file name, e.g. wal-00000003.log
	Offset  int64  // byte offset of the corrupt frame within the segment
	Reason  string // what failed: header tear, bad length, payload tear, crc
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("%s at %s offset %d", e.Reason, e.Segment, e.Offset)
}

const (
	frameHeader = 8 // length u32 + crc u32
	seqBytes    = 8 // payload prefix
)

// MaxRecordBytes caps one record; larger appends are rejected (a corrupt
// length field would otherwise make replay allocate unboundedly).
const MaxRecordBytes = 64 << 20

// Hooks inject faults for crash testing: each is called (when non-nil)
// immediately before the corresponding irreversible step. Returning an error
// aborts the operation with that error; tests typically panic or exit
// instead, simulating a crash at the tear point.
type Hooks struct {
	BeforeWrite func(seq uint64) error // before a frame reaches the OS buffer
	BeforeSync  func() error           // before the fsync of a group commit
}

// Options configures Open.
type Options struct {
	// GroupCommit is the commit window: the Sync leader waits this long
	// (unlocked) before fsyncing, so concurrent writers share one fsync.
	// Zero fsyncs immediately.
	GroupCommit time.Duration
	// NoFsync skips the fsync in Sync (for benchmarks on throwaway data;
	// the durability contract is void).
	NoFsync bool
	// Hooks inject crash faults; see Hooks.
	Hooks Hooks
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	Segments   int    // segment files on disk
	Generation uint64 // current (append) segment generation
	Frames     uint64 // frames in the log, including unsynced ones
	Bytes      int64  // bytes in the log, including unsynced ones
	NextSeq    uint64 // sequence number the next Append will get
	SyncedSeq  uint64 // highest durable sequence number
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	buf      []byte // frames appended since the last flush
	gen      uint64
	nextSeq  uint64 // last assigned sequence number
	synced   uint64 // last durable sequence number
	frames   uint64
	bytes    int64
	segments int
	syncing  bool
	closed   bool
	watch    chan struct{} // closed when synced advances (or the log closes)
}

// fsyncDir fsyncs a directory so entry creations, renames and removals under
// it survive power loss. File-content fsyncs alone do not make a new segment
// file's directory entry durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return nil
}

func segName(gen uint64) string { return fmt.Sprintf("wal-%08d.log", gen) }

// parseSegName returns the generation of a segment file name.
func parseSegName(name string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(name, "wal-%d.log", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// listSegments returns the segment generations in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if g, ok := parseSegName(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Open opens (or creates) the log in dir. The final segment's torn tail, if
// any, is truncated; the tail of every earlier segment must be intact.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	gens, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, gen: 1}
	l.cond = sync.NewCond(&l.mu)
	if len(gens) > 0 {
		l.gen = gens[len(gens)-1]
		l.segments = len(gens) - 1
		// Earlier segments: count frames, track the last sequence number.
		for _, g := range gens[:len(gens)-1] {
			n, sz, last, err := scanSegment(filepath.Join(dir, segName(g)), false)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.frames += n
			l.bytes += sz
			if n > 0 {
				l.nextSeq = last
			}
		}
		// Final segment: tolerate and truncate a torn tail.
		path := filepath.Join(dir, segName(l.gen))
		n, sz, last, err := scanSegment(path, true)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := os.Truncate(path, sz); err != nil {
			return nil, err
		}
		l.frames += n
		l.bytes += sz
		if n > 0 {
			l.nextSeq = last
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(l.gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// The segment file's directory entry must be durable before any frame in
	// it is acknowledged; fsync the directory now rather than on every Sync.
	if err := fsyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.segments++
	l.synced = l.nextSeq
	return l, nil
}

// scanSegment validates a segment and returns its frame count, the byte
// offset of the end of its last valid frame, and the last frame's sequence
// number. With tolerateTear, a torn final frame stops the scan cleanly;
// otherwise it is an error.
func scanSegment(path string, tolerateTear bool) (frames uint64, validBytes int64, lastSeq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, 0, 0, nil
		}
		return 0, 0, 0, err
	}
	defer f.Close()
	corrupt := func(reason string) error {
		return &CorruptError{Segment: filepath.Base(path), Offset: validBytes, Reason: reason}
	}
	var hdr [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return frames, validBytes, lastSeq, nil
			}
			if err == io.ErrUnexpectedEOF && tolerateTear {
				return frames, validBytes, lastSeq, nil
			}
			return 0, 0, 0, corrupt("torn frame header")
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n < seqBytes || n > MaxRecordBytes+seqBytes {
			if tolerateTear {
				return frames, validBytes, lastSeq, nil
			}
			return 0, 0, 0, corrupt(fmt.Sprintf("bad frame length %d", n))
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			if tolerateTear {
				return frames, validBytes, lastSeq, nil
			}
			return 0, 0, 0, corrupt("torn frame payload")
		}
		if crc32.ChecksumIEEE(payload) != crc {
			if tolerateTear {
				return frames, validBytes, lastSeq, nil
			}
			return 0, 0, 0, corrupt("crc mismatch")
		}
		frames++
		validBytes += int64(frameHeader) + int64(n)
		lastSeq = binary.LittleEndian.Uint64(payload[:seqBytes])
	}
}

// Append adds one record to the log and returns its sequence number. The
// record is durable only after a subsequent Sync returns nil.
func (l *Log) Append(record []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(l.nextSeq+1, record)
}

// AppendSeq adds one record under an explicit sequence number — the follower
// side of replication, which persists the primary's frames under the
// primary's numbering. Sequence numbers must be strictly increasing; gaps are
// legal (a follower bootstrapped from a snapshot starts its empty local log
// at the snapshot's covered sequence number, and Replay filters by sequence
// number, never by density).
func (l *Log) AppendSeq(seq uint64, record []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.nextSeq {
		return fmt.Errorf("wal: non-monotone sequence %d (last %d)", seq, l.nextSeq)
	}
	_, err := l.appendLocked(seq, record)
	return err
}

// SkipTo advances the next assigned sequence number to at least seq without
// writing anything. Recovery paths use it to re-anchor an empty or truncated
// log at the snapshot's covered position: a snapshot at seq N with no frames
// after it reopens with nextSeq 0, and without the skip the next Append would
// re-issue sequence numbers the snapshot already covers — frames a later
// replay (which filters by sequence) would silently drop.
func (l *Log) SkipTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.nextSeq {
		return
	}
	if l.synced == l.nextSeq {
		// Everything assigned so far is durable, and the skipped range
		// (nextSeq, seq] holds no data — the durable horizon moves with it,
		// waking any WaitSynced long-poller parked below seq.
		l.synced = seq
		if l.watch != nil {
			close(l.watch)
			l.watch = nil
		}
	}
	l.nextSeq = seq
}

func (l *Log) appendLocked(seq uint64, record []byte) (uint64, error) {
	if len(record) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(record), MaxRecordBytes)
	}
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	if h := l.opts.Hooks.BeforeWrite; h != nil {
		if err := h(seq); err != nil {
			return 0, err
		}
	}
	n := seqBytes + len(record)
	var hdr [frameHeader + seqBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[frameHeader:], seq)
	crc := crc32.ChecksumIEEE(hdr[frameHeader:])
	crc = crc32.Update(crc, crc32.IEEETable, record)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, record...)
	l.nextSeq = seq
	l.frames++
	l.bytes += int64(frameHeader) + int64(n)
	return seq, nil
}

// Sync makes every record appended so far durable (group commit; see the
// package comment). It returns once the caller's frames are synced, by this
// call or a concurrent one.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.nextSeq
	for {
		if l.closed {
			return errors.New("wal: log is closed")
		}
		if l.synced >= target {
			return nil
		}
		if !l.syncing {
			break
		}
		l.cond.Wait() // a leader is committing; it may cover target
	}
	l.syncing = true
	if w := l.opts.GroupCommit; w > 0 {
		l.mu.Unlock()
		time.Sleep(w) // commit window: let concurrent appends pile in
		l.mu.Lock()
	}
	err := l.commitLocked()
	l.syncing = false
	l.cond.Broadcast()
	return err
}

// commitLocked flushes the buffer and fsyncs; called with mu held.
func (l *Log) commitLocked() error {
	target := l.nextSeq
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			return fmt.Errorf("wal: writing frames: %w", err)
		}
		l.buf = l.buf[:0]
	}
	if h := l.opts.Hooks.BeforeSync; h != nil {
		if err := h(); err != nil {
			return err
		}
	}
	if !l.opts.NoFsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.synced = target
	if l.watch != nil {
		close(l.watch) // wake WaitSynced long-pollers
		l.watch = nil
	}
	return nil
}

// SyncedSeq returns the highest durable sequence number. Replication ships
// only frames at or below it: an unsynced frame is unacknowledged and may
// legitimately vanish in a crash, so it must never reach a follower.
func (l *Log) SyncedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// WaitSynced blocks until the durable sequence number exceeds after, the
// context is done, or the log closes. It returns the durable sequence number
// at wake-up; the long-poll tail of the replication stream is built on it.
func (l *Log) WaitSynced(ctx context.Context, after uint64) (uint64, error) {
	for {
		l.mu.Lock()
		if l.synced > after {
			s := l.synced
			l.mu.Unlock()
			return s, nil
		}
		if l.closed {
			l.mu.Unlock()
			return 0, errors.New("wal: log is closed")
		}
		if l.watch == nil {
			l.watch = make(chan struct{})
		}
		ch := l.watch
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-ch:
		}
	}
}

// Rotate durably closes the current segment and starts a new one with the
// next generation. Used by the snapshotter: after a snapshot covering the
// rotated segments is persisted, RemoveBelow garbage-collects them.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	if err := l.commitLocked(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	l.gen++
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if err := fsyncDir(l.dir); err != nil {
		f.Close()
		return 0, err
	}
	l.f = f
	l.segments++
	return l.gen, nil
}

// RemoveBelow deletes every segment with generation < gen, reclaiming log
// space covered by a snapshot. The current segment is never removed.
func (l *Log) RemoveBelow(gen uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if gen > l.gen {
		gen = l.gen
	}
	gens, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, g := range gens {
		if g >= gen {
			continue
		}
		path := filepath.Join(l.dir, segName(g))
		n, sz, _, serr := scanSegment(path, true)
		if err := os.Remove(path); err != nil {
			return err
		}
		removed = true
		l.segments--
		if serr == nil {
			l.frames -= n
			l.bytes -= sz
		}
	}
	if removed {
		// Make the removals durable: a resurrected pre-snapshot segment after
		// a crash would replay frames the snapshot already covers.
		return fsyncDir(l.dir)
	}
	return nil
}

// Generation returns the current segment generation.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// NextSeq returns the sequence number the next Append will be assigned.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq + 1
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments:   l.segments,
		Generation: l.gen,
		Frames:     l.frames,
		Bytes:      l.bytes,
		NextSeq:    l.nextSeq + 1,
		SyncedSeq:  l.synced,
	}
}

// Close flushes, fsyncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.commitLocked()
	l.closed = true
	l.cond.Broadcast()
	if l.watch != nil {
		close(l.watch) // wake WaitSynced long-pollers so they observe closed
		l.watch = nil
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Replay iterates the records of the log in dir with sequence numbers
// strictly greater than afterSeq, in order, without opening the log for
// writing. A torn final frame in the final segment ends the replay cleanly
// (that frame was never acknowledged); tears or CRC failures anywhere else
// are corruption and return a positioned error (see CorruptError) — replay
// never skips past a corrupt frame. A callback returning ErrStopReplay ends
// the replay cleanly.
func Replay(dir string, afterSeq uint64, fn func(seq uint64, record []byte) error) error {
	gens, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for gi, g := range gens {
		final := gi == len(gens)-1
		path := filepath.Join(dir, segName(g))
		if err := replaySegment(path, final, afterSeq, fn); err != nil {
			if errors.Is(err, ErrStopReplay) {
				return nil
			}
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

func replaySegment(path string, tolerateTear bool, afterSeq uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	corrupt := func(reason string, off int64) error {
		return &CorruptError{Segment: filepath.Base(path), Offset: off, Reason: reason}
	}
	var hdr [frameHeader]byte
	var payload []byte
	var off int64
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || (err == io.ErrUnexpectedEOF && tolerateTear) {
				return nil
			}
			return corrupt("torn frame header", off)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n < seqBytes || n > MaxRecordBytes+seqBytes {
			if tolerateTear {
				return nil
			}
			return corrupt(fmt.Sprintf("bad frame length %d", n), off)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			if tolerateTear {
				return nil
			}
			return corrupt("torn frame payload", off)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			if tolerateTear {
				return nil
			}
			return corrupt("crc mismatch", off)
		}
		off += int64(frameHeader) + int64(n)
		seq := binary.LittleEndian.Uint64(payload[:seqBytes])
		if seq > afterSeq {
			if err := fn(seq, payload[seqBytes:]); err != nil {
				return err
			}
		}
	}
}
