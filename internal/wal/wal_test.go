package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func collect(t *testing.T, dir string, after uint64) (seqs []uint64, recs [][]byte) {
	t.Helper()
	err := Replay(dir, after, func(seq uint64, rec []byte) error {
		seqs = append(seqs, seq)
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, recs
}

func TestAppendSyncReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 25; i++ {
		rec := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, rec)
		seq, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq %d want %d", seq, i+1)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SyncedSeq != 25 || st.Frames != 25 {
		t.Fatalf("stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, recs := collect(t, dir, 0)
	if len(seqs) != 25 {
		t.Fatalf("replayed %d frames", len(seqs))
	}
	for i := range seqs {
		if seqs[i] != uint64(i+1) || !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("frame %d: seq %d rec %q", i, seqs[i], recs[i])
		}
	}
	// afterSeq skips the prefix.
	seqs, _ = collect(t, dir, 20)
	if len(seqs) != 5 || seqs[0] != 21 {
		t.Fatalf("after=20: %v", seqs)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := 0; i < 7; i++ {
		l.Append([]byte("x"))
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l2.Append([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 8 {
		t.Fatalf("resumed seq %d want 8", seq)
	}
	l2.Close()
	seqs, _ := collect(t, dir, 0)
	if len(seqs) != 8 || seqs[7] != 8 {
		t.Fatalf("replay after reopen: %v", seqs)
	}
}

// TestTornTail: a partially written final frame is discarded on Open and on
// Replay; acknowledged frames survive byte-for-byte.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := 0; i < 5; i++ {
		l.Append([]byte(fmt.Sprintf("keep-%d", i)))
	}
	l.Sync()
	l.Append([]byte("doomed-never-synced"))
	l.Sync()
	l.Close()
	// Tear the final frame at every possible byte boundary.
	path := filepath.Join(dir, segName(1))
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, fiveEnd, _, err := scanSegment(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// fiveEnd is the end of frame 6 here; recompute the end of frame 5.
	var ends []int64
	var off int64
	for off < fiveEnd {
		n := int64(uint32(whole[off]) | uint32(whole[off+1])<<8 | uint32(whole[off+2])<<16 | uint32(whole[off+3])<<24)
		off += int64(frameHeader) + n
		ends = append(ends, off)
	}
	prevEnd := ends[len(ends)-2]
	for cut := prevEnd + 1; cut < int64(len(whole)); cut += 3 {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		seqs, _ := collect(t, dir, 0)
		if len(seqs) != 5 {
			t.Fatalf("cut %d: replayed %d frames, want 5", cut, len(seqs))
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if seq, _ := l2.Append([]byte("new")); seq != 6 {
			t.Fatalf("cut %d: next seq %d want 6", cut, seq)
		}
		l2.Close()
		os.WriteFile(path, whole, 0o644) // restore for next iteration
	}
}

// TestCorruptMiddle: flipping a byte in a non-final frame is detected.
func TestCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := 0; i < 5; i++ {
		l.Append([]byte("aaaaaaaaaa"))
	}
	l.Close()
	path := filepath.Join(dir, segName(1))
	b, _ := os.ReadFile(path)
	b[frameHeader+seqBytes+2] ^= 0xff // payload byte of frame 1
	os.WriteFile(path, b, 0o644)
	// Rotate-simulation: make it a non-final segment so the tear is not
	// tolerated even at replay level.
	os.WriteFile(filepath.Join(dir, segName(2)), nil, 0o644)
	err := Replay(dir, 0, func(uint64, []byte) error { return nil })
	if err == nil {
		t.Fatal("corruption in a non-final segment must fail replay")
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corruption in a non-final segment must fail Open")
	}
}

// TestGroupCommit: concurrent writers all get durable acknowledgments while
// sharing fsyncs through the commit window.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	var syncs int
	var smu sync.Mutex
	l, err := Open(dir, Options{
		GroupCommit: 2 * time.Millisecond,
		Hooks: Hooks{BeforeSync: func() error {
			smu.Lock()
			syncs++
			smu.Unlock()
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if err := l.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Frames != writers*per || st.SyncedSeq != writers*per {
		t.Fatalf("stats %+v", st)
	}
	smu.Lock()
	n := syncs
	smu.Unlock()
	if n >= writers*per {
		t.Fatalf("no group commit: %d fsyncs for %d synced appends", n, writers*per)
	}
	l.Close()
	if seqs, _ := collect(t, dir, 0); len(seqs) != writers*per {
		t.Fatalf("replayed %d frames", len(seqs))
	}
}

func TestRotateAndRemoveBelow(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	gen2, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != 2 {
		t.Fatalf("gen %d want 2", gen2)
	}
	l.Append([]byte("c"))
	l.Sync()
	// All three frames visible across segments.
	if seqs, _ := collect(t, dir, 0); len(seqs) != 3 {
		t.Fatalf("replay across segments: %v", seqs)
	}
	if err := l.RemoveBelow(gen2); err != nil {
		t.Fatal(err)
	}
	seqs, recs := collect(t, dir, 0)
	if len(seqs) != 1 || seqs[0] != 3 || string(recs[0]) != "c" {
		t.Fatalf("after GC: %v %q", seqs, recs)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("stats %+v", st)
	}
	l.Close()
	// Reopen continues the sequence even though early segments are gone.
	l2, _ := Open(dir, Options{})
	if seq, _ := l2.Append([]byte("d")); seq != 4 {
		t.Fatalf("seq after GC+reopen: %d want 4", seq)
	}
	l2.Close()
}

// TestHookErrors: a failing BeforeWrite rejects the append without assigning
// the sequence number; a failing BeforeSync fails Sync and nothing advances.
func TestHookErrors(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	var failWrite, failSync bool
	l, _ := Open(dir, Options{Hooks: Hooks{
		BeforeWrite: func(uint64) error {
			if failWrite {
				return boom
			}
			return nil
		},
		BeforeSync: func() error {
			if failSync {
				return boom
			}
			return nil
		},
	}})
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	failWrite = true
	if _, err := l.Append([]byte("no")); !errors.Is(err, boom) {
		t.Fatalf("BeforeWrite error not surfaced: %v", err)
	}
	failWrite = false
	if seq, _ := l.Append([]byte("ok2")); seq != 2 {
		t.Fatalf("failed append consumed a sequence number: next got %d", seq)
	}
	failSync = true
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("BeforeSync error not surfaced: %v", err)
	}
	if st := l.Stats(); st.SyncedSeq != 0 {
		t.Fatalf("failed sync advanced the watermark: %+v", st)
	}
	failSync = false
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SyncedSeq != 2 {
		t.Fatalf("stats %+v", st)
	}
	l.Close()
}

func TestReplayMissingDir(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "nope"), 0, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("missing dir should replay empty: %v", err)
	}
}
