package mvdb

// One benchmark per table/figure of the paper's evaluation (Section 5),
// wrapping the runners in internal/bench, plus micro-benchmarks for the
// operations each figure isolates. Run with:
//
//	go test -bench=. -benchmem
//
// The full-sweep reproduction (paper-sized domains) is cmd/mvbench; these
// benchmarks use reduced sweeps so the suite completes in minutes.

import (
	"testing"

	"mvdb/internal/bench"
	"mvdb/internal/core"
	"mvdb/internal/dblp"
	"mvdb/internal/lineage"
	"mvdb/internal/mvindex"
	"mvdb/internal/obdd"
	"mvdb/internal/ucq"
)

func benchOpts() bench.Options {
	o := bench.Small()
	o.Domains = []int{300, 600, 900}
	o.FullAuthors = 2000
	return o
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Inventory regenerates the Figure 1 dataset inventory.
func BenchmarkFig1Inventory(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig4LineageSize regenerates Figure 4 (lineage size of W).
func BenchmarkFig4LineageSize(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5AdvisorOfStudent regenerates Figure 5 (Alchemy vs MV,
// advisor-of-student query).
func BenchmarkFig5AdvisorOfStudent(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6StudentsOfAdvisor regenerates Figure 6 (Alchemy vs MV,
// students-of-advisor query).
func BenchmarkFig6StudentsOfAdvisor(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7OBDDSize regenerates Figure 7 (OBDD size of V2).
func BenchmarkFig7OBDDSize(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Construction regenerates Figure 8 (CUDD-style synthesis vs
// concatenation construction time).
func BenchmarkFig8Construction(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Intersect regenerates Figure 9 (MVIntersect vs
// CC-MVIntersect on a worst-case spanning query).
func BenchmarkFig9Intersect(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10StudentQueries regenerates Figure 10 (per-query latency,
// students of an advisor, full dataset).
func BenchmarkFig10StudentQueries(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11AffiliationQueries regenerates Figure 11 (per-query
// latency, affiliations of an author, full dataset).
func BenchmarkFig11AffiliationQueries(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkMaddenQuery regenerates the running example of Figure 2.
func BenchmarkMaddenQuery(b *testing.B) { runExperiment(b, "madden") }

// --- micro-benchmarks for the operations the figures isolate ---

type fixture struct {
	data *dblp.Dataset
	tr   *core.Translation
	ix   *mvindex.Index
}

func newFixture(b *testing.B, authors int, views string) *fixture {
	b.Helper()
	data, err := dblp.Generate(dblp.Config{NumAuthors: authors, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var sel []*core.MarkoView
	for _, c := range views {
		switch c {
		case '1':
			sel = append(sel, data.V1)
		case '2':
			sel = append(sel, data.V2)
		case '3':
			sel = append(sel, data.V3)
		}
	}
	m, err := data.MVDB(sel...)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := m.Translate(core.TranslateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := mvindex.Build(tr)
	if err != nil {
		b.Fatal(err)
	}
	return &fixture{data: data, tr: tr, ix: ix}
}

// BenchmarkOBDDConstructConcat isolates the Figure 8 fast path: building
// W's OBDD by concatenation.
func BenchmarkOBDDConstructConcat(b *testing.B) {
	fx := newFixture(b, 1000, "2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := fx.tr.CompileW(obdd.CompileOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOBDDConstructSynthesis isolates the Figure 8 baseline: the same
// OBDD synthesized from the raw lineage with Apply (CUDD-style).
func BenchmarkOBDDConstructSynthesis(b *testing.B) {
	fx := newFixture(b, 1000, "2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := fx.tr.CompileW(obdd.CompileOptions{FromLineage: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func spanning(fx *fixture, k int) lineage.DNF {
	m, fW, _ := fx.tr.OBDD()
	support := m.Support(fW)
	var d lineage.DNF
	if len(support) == 0 {
		return d
	}
	for i := 0; i < k; i++ {
		d = append(d, []int{support[i*(len(support)-1)/(k-1)]})
	}
	return d
}

// BenchmarkMVIntersect isolates the Figure 9 traversal (pointer layout).
func BenchmarkMVIntersect(b *testing.B) {
	fx := newFixture(b, 2000, "2")
	lin := spanning(fx, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.ix.IntersectLineage(lin, mvindex.IntersectOptions{})
	}
}

// BenchmarkCCMVIntersect isolates the Figure 9 cache-conscious traversal.
func BenchmarkCCMVIntersect(b *testing.B) {
	fx := newFixture(b, 2000, "2")
	lin := spanning(fx, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.ix.IntersectLineage(lin, mvindex.IntersectOptions{CacheConscious: true})
	}
}

// BenchmarkIndexQuery measures one full online query (lineage + intersect)
// through the MV-index — the Figure 10 path.
func BenchmarkIndexQuery(b *testing.B) {
	fx := newFixture(b, 2000, "123")
	s := fx.data.Students[len(fx.data.Students)/2]
	q := dblp.QueryStudentsOfAdvisorID(fx.data.StudentAdvisor[s])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.ix.Query(q, mvindex.IntersectOptions{CacheConscious: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEntryShortcutAblation measures the same query with the
// reachability entry shortcut disabled (full-index traversal).
func BenchmarkEntryShortcutAblation(b *testing.B) {
	fx := newFixture(b, 2000, "123")
	s := fx.data.Students[len(fx.data.Students)/2]
	q := dblp.QueryStudentsOfAdvisorID(fx.data.StudentAdvisor[s])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.ix.Query(q, mvindex.IntersectOptions{CacheConscious: true, NoEntryShortcut: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelCompile compares the parallel per-block compilation of W
// against the sequential reference (the tentpole speedup of the concurrency
// layer). "seq" pins Parallelism: 1; "par" uses GOMAXPROCS workers — on a
// single-core host the two coincide.
func BenchmarkParallelCompile(b *testing.B) {
	fx := newFixture(b, 2000, "2")
	for _, c := range []struct {
		name string
		par  int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := fx.tr.CompileW(obdd.CompileOptions{Parallelism: c.par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelQuery compares the per-answer worker pool of Index.Query
// against the sequential loop on a many-answer query (all student advisors).
func BenchmarkParallelQuery(b *testing.B) {
	fx := newFixture(b, 2000, "123")
	q := ucq.MustParse("Q(s, a) :- Advisor(s, a)")
	for _, c := range []struct {
		name string
		par  int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fx.ix.Query(q, mvindex.IntersectOptions{CacheConscious: true, Parallelism: c.par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTranslate measures the MVDB -> INDB translation (view
// materialization + NV construction).
func BenchmarkTranslate(b *testing.B) {
	data, err := dblp.Generate(dblp.Config{NumAuthors: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := data.MVDB()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Translate(core.TranslateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLineageEval measures the engine's lineage computation for the
// Madden query (the "round trip to Postgres" part of Section 5.4).
func BenchmarkLineageEval(b *testing.B) {
	fx := newFixture(b, 2000, "12")
	q := dblp.QueryStudentsOfAdvisor("%Madden%")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ucq.Eval(fx.tr.DB, q); err != nil {
			b.Fatal(err)
		}
	}
}
