package mvdb

import (
	"math"
	"os"
	"testing"
)

// TestFacadeQuickstart runs the doc-comment quickstart end to end.
func TestFacadeQuickstart(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("S", false, "x")
	db.MustInsert("R", 2.0, Int(1))
	db.MustInsert("S", 3.0, Int(1))

	m := New(db)
	v, err := ParseView("V(x) :- R(x), S(x)", ConstWeight(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(tr)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("Q() :- R(x), S(x)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ix.ProbBoolean(q.UCQ, IntersectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: worlds 1, 2, 3, 0.5*6 -> P(R∧S) = 3/(1+2+3+3) = 1/3.
	if math.Abs(p-3.0/9.0) > 1e-9 {
		t.Errorf("P = %v want 1/3", p)
	}
	// Cross-check against the direct translation methods.
	for _, meth := range []Method{MethodBruteForce, MethodOBDD, MethodLifted} {
		got, err := tr.ProbBoolean(q.UCQ, meth)
		if err != nil {
			t.Fatalf("%v: %v", meth, err)
		}
		if math.Abs(got-p) > 1e-9 {
			t.Errorf("%v: %v vs index %v", meth, got, p)
		}
	}
}

func TestFacadeIsSafe(t *testing.T) {
	q, err := ParseQuery("Q() :- R(x), S(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	if !IsSafe(q.UCQ) {
		t.Error("hierarchical query reported unsafe")
	}
	q, _ = ParseQuery("Q() :- R(x), S(x,y), T(y)")
	if IsSafe(q.UCQ) {
		t.Error("H0 reported safe")
	}
}

func TestFacadeDBLP(t *testing.T) {
	d, err := GenerateDBLP(DBLPConfig{NumAuthors: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.MVDB()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() == 0 {
		t.Error("empty index on DBLP data")
	}
}

func TestFacadePlan(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("S", false, "x", "y")
	db.MustInsert("R", 1, Int(1))
	db.MustInsert("S", 1, Int(1), Int(2))
	q, _ := ParseQuery("Q() :- R(x), S(x,y)")
	p, err := ExtractPlan(db, q.UCQ)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Prob()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P = %v", got)
	}
	if p.String() == "" {
		t.Error("empty plan rendering")
	}
	hard, _ := ParseQuery("Q() :- R(x), S(x,y), T2(y)")
	db.MustCreateRelation("T2", false, "y")
	db.MustInsert("T2", 1, Int(2))
	if _, err := ExtractPlan(db, hard.UCQ); err == nil {
		t.Error("H0 plan extracted")
	}
}

func TestFacadeIndexPersistence(t *testing.T) {
	d, err := GenerateDBLP(DBLPConfig{NumAuthors: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := d.MVDB()
	tr, err := m.Translate(TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/x.mvx"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != ix.Size() {
		t.Errorf("size %d vs %d", back.Size(), ix.Size())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back2, err := ReadIndex(f)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Blocks() != ix.Blocks() {
		t.Errorf("blocks %d vs %d", back2.Blocks(), ix.Blocks())
	}
}

func TestFacadeMAPAndMLN(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("S", false, "x")
	db.MustInsert("R", 4.0, Int(1))
	db.MustInsert("S", 4.0, Int(1))
	m := New(db)
	v, _ := ParseView("V(x) :- R(x), S(x)", ConstWeight(0)) // exclusive
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	world, err := m.MAPExact()
	if err != nil {
		t.Fatal(err)
	}
	if len(world.Tuples["R"])+len(world.Tuples["S"]) != 1 {
		t.Errorf("MAP world = %+v", world.Tuples)
	}
	net, err := m.GroundMLN()
	if err != nil {
		t.Fatal(err)
	}
	p, err := net.MarginalExact(VarFormula(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ProbMCSat(mustQ(t, "Q() :- R(1)").UCQ, MCSatOptions{Burn: 200, Samples: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-p) > 0.05 {
		t.Errorf("MC-SAT %v vs exact %v", got, p)
	}
}

func TestFacadeConditionalAndConjoin(t *testing.T) {
	db := NewDatabase()
	db.MustCreateRelation("R", false, "x")
	db.MustCreateRelation("S", false, "x")
	db.MustInsert("R", 1, Int(1))
	db.MustInsert("S", 1, Int(1))
	m := New(db)
	v, _ := ParseView("V(x) :- R(x), S(x)", ConstWeight(3))
	if err := m.AddView(v); err != nil {
		t.Fatal(err)
	}
	tr, _ := m.Translate(TranslateOptions{})
	qs := mustQ(t, "Q() :- S(x)")
	qr := mustQ(t, "Q() :- R(x)")
	cond, err := tr.ProbConditional(qs.UCQ, qr.UCQ, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := tr.ProbBoolean(Conjoin(qs.UCQ, qr.UCQ), MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := tr.ProbBoolean(qr.UCQ, MethodOBDD)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-joint/pr) > 1e-9 {
		t.Errorf("cond %v vs joint/pr %v", cond, joint/pr)
	}
}

func mustQ(t *testing.T, src string) *Query {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
