module mvdb

go 1.22
